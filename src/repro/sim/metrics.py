"""Metrics derived from broadcast traces.

The paper's figures plot the end-to-end latency ``P(A)``; the summary in
Section V-C additionally argues in terms of relative improvement ("at least
70% improvement", "85% up to 90%"), tree depth and link utilisation.  This
module turns a :class:`~repro.sim.trace.BroadcastResult` into those numbers
and provides the aggregation helpers the experiment harness uses across
repetitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.network.topology import WSNTopology
from repro.sim.trace import BroadcastResult, MultiBroadcastResult

__all__ = [
    "BroadcastMetrics",
    "MultiBroadcastMetrics",
    "improvement_percent",
    "aggregate_latency",
]


@dataclass(frozen=True)
class BroadcastMetrics:
    """Per-broadcast metrics.

    Attributes
    ----------
    latency:
        Elapsed rounds/slots (the paper's ``P(A)`` for ``t_s = 1``).
    end_time:
        Absolute end round/slot ``t_e``.
    num_advances:
        Rounds/slots with at least one transmission.
    idle_time:
        Rounds/slots inside the broadcast window without any transmission
        (cycle waiting in the duty-cycle system).
    total_transmissions:
        Number of individual node transmissions.
    mean_utilization:
        Average receivers per transmitter over all advances.
    max_concurrency:
        Largest number of simultaneous transmitters in one advance.
    eccentricity:
        Hop distance ``d`` from the source to the farthest node.
    stretch:
        ``latency / eccentricity`` — how far the schedule is from the
        1-round-per-hop floor (>= 1 in the synchronous system).
    """

    latency: int
    end_time: int
    num_advances: int
    idle_time: int
    total_transmissions: int
    mean_utilization: float
    max_concurrency: int
    eccentricity: int
    stretch: float

    @classmethod
    def from_result(
        cls, topology: WSNTopology, result: BroadcastResult
    ) -> "BroadcastMetrics":
        """Compute the metrics of ``result`` on ``topology``."""
        utilizations = [a.utilization for a in result.advances]
        eccentricity = topology.eccentricity(result.source)
        latency = result.latency
        return cls(
            latency=latency,
            end_time=result.end_time,
            num_advances=result.num_advances,
            idle_time=result.idle_time,
            total_transmissions=result.total_transmissions,
            mean_utilization=(
                sum(utilizations) / len(utilizations) if utilizations else 0.0
            ),
            max_concurrency=max(
                (len(a.color) for a in result.advances), default=0
            ),
            eccentricity=eccentricity,
            stretch=latency / eccentricity if eccentricity else math.inf,
        )


@dataclass(frozen=True)
class MultiBroadcastMetrics:
    """Per-message aggregation of one multi-source broadcast.

    Attributes
    ----------
    num_messages:
        The number of concurrent messages ``k``.
    makespan:
        Elapsed rounds/slots until *every* message completed (the
        workload-level ``P(A)``).
    mean_message_latency, min_message_latency, max_message_latency:
        Aggregates of the per-message latencies on the shared timeline
        (``max`` coincides with the makespan).
    total_transmissions, total_advances:
        Transmission work summed over all messages.
    per_message:
        The full :class:`BroadcastMetrics` of each message, in source order.
    """

    num_messages: int
    makespan: int
    mean_message_latency: float
    min_message_latency: int
    max_message_latency: int
    total_transmissions: int
    total_advances: int
    per_message: tuple[BroadcastMetrics, ...]

    @classmethod
    def from_result(
        cls, topology: WSNTopology, result: MultiBroadcastResult
    ) -> "MultiBroadcastMetrics":
        """Compute the per-message aggregation of ``result`` on ``topology``."""
        per_message = tuple(
            BroadcastMetrics.from_result(topology, message)
            for message in result.messages
        )
        latencies = result.per_message_latency
        return cls(
            num_messages=result.num_messages,
            makespan=result.latency,
            mean_message_latency=sum(latencies) / len(latencies),
            min_message_latency=min(latencies),
            max_message_latency=max(latencies),
            total_transmissions=result.total_transmissions,
            total_advances=result.num_advances,
            per_message=per_message,
        )


def improvement_percent(baseline_latency: float, improved_latency: float) -> float:
    """Relative latency improvement in percent (the paper's §V-C metric).

    ``improvement_percent(10, 3) == 70.0`` — the improved schedule needs 70%
    fewer rounds/slots than the baseline.
    """
    if baseline_latency <= 0:
        raise ValueError("baseline latency must be positive")
    return 100.0 * (baseline_latency - improved_latency) / baseline_latency


def aggregate_latency(latencies: Iterable[float]) -> dict[str, float]:
    """Mean / min / max / count summary used by the experiment harness."""
    values: Sequence[float] = list(latencies)
    if not values:
        return {"mean": math.nan, "min": math.nan, "max": math.nan, "count": 0}
    return {
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
        "count": len(values),
    }
