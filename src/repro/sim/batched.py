"""Batched multi-cell broadcast execution (the ``engine="batched"`` backend).

A sweep grid is thousands of *independent* broadcasts, and the vectorized
engine still pays Python-level numpy dispatch per advance per broadcast.
:func:`run_batched` stacks many same-size broadcasts ("lanes") and advances
all of them together: the per-advance interference kernels — hear counts,
conflict tests, receiver computation, frontier-degree updates — run as a
single gather + matmul over an ``(L, n, n)`` adjacency tensor
(:func:`repro.network.bitset.stacked_hear_counts_at`) instead of one
matrix slice per lane, and wake-up activity is answered by per-(node,
slot) point queries, so hint-driven lanes never materialize an activity
window at all.

Determinism contract
--------------------
Lanes step on **lane-local clocks**: each lane computes its next offered
slot with exactly the rules of the vectorized kernel
(:meth:`repro.sim.fast_engine._FastEngineBase._iter_run` — hint
fast-forward, then the awake-frontier scan for frontier-driven duty-cycle
policies), the policy's ``select_advance`` runs per lane, and the link
model's RNG is consumed per lane in the canonical candidate-pair order.
Batching therefore changes *which numpy calls* carry the work, never which
slots are offered, which advances are validated, or which uniform draws a
delivery consumes — the traces are **bit-identical** to per-lane runs for
any lane grouping, batch size, or engine backend (the conformance suite in
``tests/property/test_backend_conformance.py`` pins this across the full
scenario x duty-model x link-model matrix).

:class:`BatchedRoundEngine` / :class:`BatchedSlotEngine` plug the kernel
into :data:`repro.sim.broadcast.ENGINE_BACKENDS` as ``"batched"``, so
single broadcasts (and the parity suites) exercise the real stacked kernel
at ``L = 1``; the sweep runner (:mod:`repro.experiments.runner`) builds
multi-lane stripes out of whole grid cells.  Multi-source broadcasts fall
back to the vectorized twin (the engines inherit ``run_multi``): the
shared-timeline contention loop is inherently cross-message sequential.

Error semantics: lanes fail loudly with the per-lane engines' exact
messages (invalid advances, sleeping transmitters, conflicts, receiver
mismatches, :class:`~repro.sim.engine.SimulationTimeout`); one failing lane
aborts its batch, as a failing cell aborts a sweep.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.advance import Advance, BroadcastState
from repro.core.policies import SchedulingPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.bitset import (
    BitsetTopology,
    stacked_adjacency,
    stacked_hear_counts_at,
    stacked_receivers,
)
from repro.network.topology import WSNTopology
from repro.sim.engine import SimulationTimeout
from repro.sim.fast_engine import (
    FastRoundEngine,
    FastSlotEngine,
    _FrontierScan,
    _window_for,
)
from repro.sim.links import LinkModel, ReliableLinks
from repro.sim.trace import BroadcastResult
from repro.sim.validation import assert_valid
from repro.utils.validation import require

__all__ = [
    "BroadcastTask",
    "run_batched",
    "BatchedRoundEngine",
    "BatchedSlotEngine",
]


@dataclass
class BroadcastTask:
    """One single-source broadcast to execute as a lane of a batch.

    Mirrors the keyword surface of :func:`repro.sim.broadcast.run_broadcast`
    (single-source form): the same task parameters produce the bit-identical
    trace through any backend.  ``policy`` is consumed (prepared and run) by
    the batch — pass a fresh instance per task.
    """

    topology: WSNTopology
    source: int
    policy: SchedulingPolicy
    schedule: WakeupSchedule | None = None
    start_time: int = 1
    align_start: bool = False
    max_time: int | None = None
    link_model: LinkModel | None = None


class _Lane:
    """Per-broadcast state of one batched lane.

    Holds exactly the scalars and Python-side sets of the vectorized
    kernel's slot loop; the boolean/stacked state (coverage, uncovered
    degrees, adjacency) lives in the owning :class:`_LaneBatch` rows.
    """

    __slots__ = (
        "row",
        "topology",
        "view",
        "policy",
        "schedule",
        "link",
        "link_state",
        "source",
        "start_time",
        "time",
        "end_time",
        "limit",
        "covered",
        "covered_count",
        "num_nodes",
        "check_conflicts",
        "skip_idle",
        "hint",
        "advances",
        "result",
        "frontier_idx",
        "window",
        "scan",
    )

    def __init__(self, task: BroadcastTask, *, prepare: bool) -> None:
        topology = task.topology
        link = ReliableLinks() if task.link_model is None else task.link_model
        policy = task.policy
        if not link.lossless and not getattr(policy, "loss_tolerant", True):
            raise ValueError(
                f"policy {policy.name!r} replays a fixed plan that assumes "
                "reliable delivery and cannot run over lossy links; pick "
                "a loss-tolerant tier from the solver registry "
                "(repro.solvers.SOLVER_TIERS, --list-solvers) or a "
                "frontier scheduler (OPT, G-OPT, E-model, largest-first) "
                "for the loss axis"
            )
        if prepare:
            policy.prepare(topology, task.schedule, task.source)
        # The per-lane Fast engine computes the default time limit (and
        # raises the constructor-time errors: unknown source, schedule not
        # covering the topology) so batched limits — and failure modes —
        # can never drift from the per-cell backends.
        require(task.source in topology, f"unknown source node {task.source}")
        start_time = task.start_time
        if task.schedule is None:
            engine = FastRoundEngine(topology, link_model=link)
            max_time = (
                engine._default_max_rounds(task.source)
                if task.max_time is None
                else task.max_time
            )
        else:
            engine = FastSlotEngine(topology, task.schedule, link_model=link)
            if task.align_start:
                start_time = task.schedule.next_active_slot(task.source, start_time)
            max_time = (
                engine._default_max_slots(task.source)
                if task.max_time is None
                else task.max_time
            )
        require(start_time >= 1, "start_time is 1-based")

        self.topology = topology
        self.view: BitsetTopology = engine._view
        self.policy = policy
        self.schedule = task.schedule
        self.link = link
        self.link_state = None if link.lossless else link.make_state()
        self.source = task.source
        self.start_time = start_time
        self.time = start_time
        self.end_time = start_time - 1
        self.limit = start_time + max_time
        self.covered: frozenset[int] = frozenset({task.source})
        self.covered_count = 1
        self.num_nodes = self.view.num_nodes
        self.check_conflicts = getattr(policy, "interference_free", True)
        self.skip_idle = task.schedule is not None and getattr(
            policy, "frontier_driven", False
        )
        self.hint = policy.next_decision_slot
        self.advances: list[Advance] = []
        self.result: BroadcastResult | None = None
        # Frontier bookkeeping, dirty (None) whenever coverage grows; the
        # window/scan pair is created lazily on the first idle-slot probe,
        # so hint-driven lanes never materialize an activity window.
        self.frontier_idx: np.ndarray | None = None
        self.window = None
        self.scan: _FrontierScan | None = None

    def finish(self) -> None:
        self.result = BroadcastResult(
            policy_name=self.policy.name,
            source=self.source,
            start_time=self.start_time,
            end_time=max(self.end_time, self.start_time - 1),
            covered=self.covered,
            advances=tuple(self.advances),
            synchronous=self.schedule is None,
            cycle_rate=1 if self.schedule is None else self.schedule.rate,
        )


class _LaneBatch:
    """Stacked execution of same-size lanes on lane-local clocks."""

    def __init__(self, lanes: Sequence[_Lane]) -> None:
        self.lanes = list(lanes)
        n = self.lanes[0].num_nodes
        self.n = n
        num_lanes = len(self.lanes)
        self.adjacency = stacked_adjacency([lane.view for lane in self.lanes])
        self.covered = np.zeros((num_lanes, n), dtype=bool)
        # Uncovered-degree rows exist only for the frontier scan of
        # duty-cycle idle-slot skipping; a batch with no such lane (all
        # synchronous, or hint-driven policies) never reads them, so it
        # skips both the init and the per-advance update kernel.
        self.track_frontier = any(lane.skip_idle for lane in self.lanes)
        # float32 like the kernel's counts (exact small integers), so the
        # per-advance degree update is a single in-place subtract.
        self.uncovered_degree = (
            np.empty((num_lanes, n), dtype=np.float32) if self.track_frontier else None
        )
        for row, lane in enumerate(self.lanes):
            lane.row = row
            source_row = lane.view.index_of(lane.source)
            self.covered[row, source_row] = True
            if self.track_frontier:
                # hear_counts of the lone source row is its adjacency row.
                self.uncovered_degree[row] = (
                    lane.view.degrees - self.adjacency[row, source_row]
                )

    # ------------------------------------------------------------------
    def _compute_offer(self, lane: _Lane) -> None:
        """Advance ``lane.time`` to its next offered slot.

        Line-for-line twin of the vectorized kernel's hint fast-forward and
        awake-frontier scan, so the offered-slot sequence of every lane is
        identical to its per-lane run.
        """
        time = lane.time
        hinted = lane.hint(time)
        if hinted is not None and hinted > time:
            time = hinted
        if lane.skip_idle and hinted != time and time <= lane.limit:
            if lane.frontier_idx is None:
                lane.frontier_idx = np.flatnonzero(
                    self.covered[lane.row] & (self.uncovered_degree[lane.row] > 0)
                )
                lane.scan = None
            if lane.window is None:
                lane.window = _window_for(lane.schedule, lane.view)
            if not lane.window.active_rows(lane.frontier_idx, time).any():
                if lane.scan is None:
                    lane.scan = _FrontierScan(lane.window, lane.frontier_idx, time)
                next_slot = lane.scan.next_active(time, lane.limit)
                time = lane.limit + 1 if next_slot is None else next_slot
        if time > lane.limit:
            raise SimulationTimeout(
                f"broadcast did not complete by time {lane.limit} "
                f"(covered {lane.covered_count}/{lane.num_nodes} nodes); the policy "
                "or the wake-up schedule is not making progress"
            )
        lane.time = time

    # ------------------------------------------------------------------
    def _apply(self, proposals: list[tuple[_Lane, Advance]]) -> None:
        """Validate and apply one advance per proposing lane, batched."""
        n = self.n
        checked: list[tuple[_Lane, Advance, np.ndarray]] = []
        tx_flat_parts: list[np.ndarray] = []
        for lane, advance in proposals:
            if advance.time != lane.time:
                raise ValueError(
                    f"policy returned an advance for time {advance.time}, "
                    f"expected {lane.time}"
                )
            not_covered = advance.color - lane.covered
            if not_covered:
                raise ValueError(
                    f"policy scheduled transmitters that do not hold the message: "
                    f"{sorted(not_covered)}"
                )
            tx_idx = lane.view.indices(advance.color)
            if lane.schedule is not None:
                asleep = [
                    u
                    for u in advance.color
                    if not lane.schedule.is_active(u, lane.time)
                ]
                if asleep:
                    raise ValueError(
                        f"policy scheduled sleeping transmitters at slot "
                        f"{lane.time}: {sorted(asleep)}"
                    )
            tx_flat_parts.append(lane.row * n + tx_idx)
            checked.append((lane, advance, tx_idx))
        lane_rows, tx_cols = np.divmod(np.concatenate(tx_flat_parts), n)
        counts = stacked_hear_counts_at(self.adjacency, lane_rows, tx_cols)
        conflicts, expected = stacked_receivers(counts, self.covered)
        expected_counts = expected.sum(axis=1).tolist()

        # Per-lane validation order matches the per-lane kernel: conflicts
        # before the receiver-equality check.
        recorded_rows: list[np.ndarray | None] = []
        for lane, advance, tx_idx in checked:
            if lane.check_conflicts and conflicts[lane.row]:
                pairs = lane.view.conflicting_pairs(tx_idx, self.covered[lane.row])
                raise ValueError(
                    f"policy scheduled conflicting transmitters at time "
                    f"{lane.time}: {pairs}"
                )
            try:
                recorded_idx = lane.view.indices(advance.receivers)
            except KeyError:
                recorded_idx = None
            if (
                recorded_idx is None
                or len(recorded_idx) != expected_counts[lane.row]
                or not expected[lane.row, recorded_idx].all()
            ):
                raise ValueError(
                    "advance.receivers does not match the uncovered neighbours "
                    f"of its transmitters at time {lane.time}"
                )
            recorded_rows.append(recorded_idx)

        delivered_flat_parts: list[np.ndarray] = []
        for (lane, advance, tx_idx), recorded_idx in zip(checked, recorded_rows):
            if lane.link.lossless:
                recorded = advance
                delivered = advance.receivers
                delivered_idx = recorded_idx
            else:
                delivered_bool = lane.link.deliver_bool(
                    lane.link_state,
                    lane.view,
                    tx_idx,
                    expected[lane.row],
                    self.covered[lane.row],
                )
                delivered = lane.view.nodes_from_bool(delivered_bool)
                delivered_idx = np.flatnonzero(delivered_bool)
                recorded = dataclasses.replace(
                    advance,
                    receivers=delivered,
                    intended_receivers=advance.receivers,
                )
            if delivered:
                delivered_flat_parts.append(lane.row * n + delivered_idx)
                lane.covered = lane.covered | delivered
                lane.covered_count += len(delivered)
                lane.end_time = lane.time
                lane.frontier_idx = None
            lane.advances.append(recorded)
        if delivered_flat_parts:
            delivered_flat = np.concatenate(delivered_flat_parts)
            self.covered.reshape(-1)[delivered_flat] = True
            if self.track_frontier:
                self.uncovered_degree -= stacked_hear_counts_at(
                    self.adjacency, *np.divmod(delivered_flat, n)
                )

    # ------------------------------------------------------------------
    def run(self) -> None:
        active = []
        for lane in self.lanes:
            if lane.covered_count == lane.num_nodes:
                lane.finish()
            else:
                active.append(lane)
        while active:
            for lane in active:
                self._compute_offer(lane)
            proposals: list[tuple[_Lane, Advance]] = []
            for lane in active:
                state = BroadcastState.for_engine(
                    lane.topology, lane.covered, lane.time, lane.schedule
                )
                advance = lane.policy.select_advance(state)
                if advance is not None:
                    proposals.append((lane, advance))
            if proposals:
                self._apply(proposals)
            still_active = []
            for lane in active:
                lane.time += 1
                if lane.covered_count == lane.num_nodes:
                    lane.finish()
                else:
                    still_active.append(lane)
            active = still_active


def run_batched(
    tasks: Sequence[BroadcastTask],
    *,
    batch: int = 0,
    validate: bool = True,
    prepare: bool = True,
) -> list[BroadcastResult]:
    """Execute many independent broadcasts through the stacked kernel.

    Tasks are grouped by node count (stacking requires one shape per
    batch) and each group is split into chunks of at most ``batch`` lanes
    (``0`` batches a whole group at once); results come back in task
    order.  Lanes are independent, so any grouping or chunking produces
    the bit-identical traces — ``batch`` is purely a memory/throughput
    knob (an ``(L, n, n)`` uint8 tensor per chunk).

    ``validate`` re-checks every trace against the network model (the
    vectorized validation backend), exactly like
    :func:`~repro.sim.broadcast.run_broadcast`; ``prepare=False`` skips the
    policies' ``prepare`` hook for callers that already invoked it.
    """
    require(batch >= 0, "batch must be >= 0 (0 = one batch per node count)")
    task_list = list(tasks)
    results: list[BroadcastResult | None] = [None] * len(task_list)
    groups: dict[int, list[int]] = {}
    for index, task in enumerate(task_list):
        groups.setdefault(task.topology.num_nodes, []).append(index)
    for members in groups.values():
        chunk_size = batch if batch > 0 else len(members)
        for begin in range(0, len(members), chunk_size):
            chunk = members[begin : begin + chunk_size]
            lanes = [_Lane(task_list[index], prepare=prepare) for index in chunk]
            _LaneBatch(lanes).run()
            for index, lane in zip(chunk, lanes):
                results[index] = lane.result
    if validate:
        for task, result in zip(task_list, results):
            link = task.link_model
            assert_valid(
                task.topology,
                result,
                schedule=task.schedule,
                backend="vectorized",
                lossy=link is not None and not link.lossless,
            )
    return [result for result in results if result is not None]


class BatchedRoundEngine(FastRoundEngine):
    """Round-based engine routing through the stacked kernel at ``L = 1``.

    Inherits the vectorized engine's constructor, default limits and
    multi-source ``run_multi`` (multi-source contention is cross-message
    sequential, so batching buys nothing there); single-source ``run``
    executes the real batched kernel so that every parity/conformance
    suite exercises the same code path sweeps use.
    """

    def run(
        self,
        policy: SchedulingPolicy,
        source: int,
        *,
        start_time: int = 1,
        max_rounds: int | None = None,
    ) -> BroadcastResult:
        task = BroadcastTask(
            topology=self.topology,
            source=source,
            policy=policy,
            schedule=None,
            start_time=start_time,
            max_time=max_rounds,
            link_model=self.link_model,
        )
        return run_batched([task], validate=False, prepare=False)[0]


class BatchedSlotEngine(FastSlotEngine):
    """Duty-cycle engine routing through the stacked kernel at ``L = 1``."""

    def run(
        self,
        policy: SchedulingPolicy,
        source: int,
        *,
        start_time: int = 1,
        align_start: bool = False,
        max_slots: int | None = None,
    ) -> BroadcastResult:
        task = BroadcastTask(
            topology=self.topology,
            source=source,
            policy=policy,
            schedule=self.schedule,
            start_time=start_time,
            align_start=align_start,
            max_time=max_slots,
            link_model=self.link_model,
        )
        return run_batched([task], validate=False, prepare=False)[0]
