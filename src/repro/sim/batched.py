"""Batched multi-cell broadcast execution (the ``engine="batched"`` backend).

A sweep grid is thousands of *independent* broadcasts, and the vectorized
engine still pays Python-level numpy dispatch per advance per broadcast.
:func:`run_batched` stacks many same-size broadcasts ("lanes") and advances
all of them together: the per-advance interference kernels — hear counts,
conflict tests, receiver computation, frontier-degree updates — run as a
single gather + matmul over an ``(L, n, n)`` adjacency tensor
(:func:`repro.network.bitset.stacked_hear_counts_at`) instead of one
matrix slice per lane, and wake-up activity is answered by per-(node,
slot) point queries, so hint-driven lanes never materialize an activity
window at all.

Scheduling decisions are batched too: each lane owns one reusable
:class:`repro.core.advance.LaneStateView` over the stacked coverage /
uncovered-degree rows (no :class:`~repro.core.advance.BroadcastState`
allocation per lane per slot), lanes are grouped by policy class, and each
group is decided with one
:meth:`~repro.core.policies.SchedulingPolicy.select_advance_batch` call —
a dict lookup per lane for the plan-driven family, a stacked frontier mask
for flooding, the per-lane fallback for everything else.  A min-heap of
lane wake times drives the scheduler: every lane is fast-forwarded by its
policy's ``next_decision_slot`` hint (and, for frontier-driven duty-cycle
policies, the awake-frontier scan) before it re-enters the heap, so lanes
promising idle slots jump straight to their next decision time.

Determinism contract
--------------------
Lanes step on **lane-local clocks**: each lane computes its next offered
slot with exactly the rules of the vectorized kernel
(:meth:`repro.sim.fast_engine._FastEngineBase._iter_run` — hint
fast-forward, then the awake-frontier scan for frontier-driven duty-cycle
policies), the policy decides per lane (batched deciders are
lane-independent by contract), and the link model's RNG is consumed per
lane in the canonical candidate-pair order.  Batching therefore changes
*which numpy calls* carry the work, never which slots are offered, which
advances are validated, or which uniform draws a delivery consumes — the
traces are **bit-identical** to per-lane runs for any lane grouping, batch
size, decision path (``batch_decisions`` on or off) or engine backend (the
conformance suite in ``tests/property/test_backend_conformance.py`` pins
this across the full scenario x duty-model x link-model matrix).

:class:`BatchedRoundEngine` / :class:`BatchedSlotEngine` plug the kernel
into :data:`repro.sim.broadcast.ENGINE_BACKENDS` as ``"batched"``, so
single broadcasts (and the parity suites) exercise the real stacked kernel
at ``L = 1``; the sweep runner (:mod:`repro.experiments.runner`) builds
multi-lane stripes out of whole grid cells.  Multi-source broadcasts fall
back to the vectorized twin (the engines inherit ``run_multi``): the
shared-timeline contention loop is inherently cross-message sequential.

Error semantics: lanes fail loudly with the per-lane engines' exact
messages (invalid advances, sleeping transmitters, conflicts, receiver
mismatches, :class:`~repro.sim.engine.SimulationTimeout`); one failing lane
aborts its batch, as a failing cell aborts a sweep.  When several lanes of
one macro-step fail, the lane served earliest (smallest wake time, then
lane order) raises first.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass
from time import perf_counter
from typing import Sequence

import numpy as np

from repro.core.advance import Advance, BroadcastState, LaneStateView
from repro.core.policies import SchedulingPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.bitset import (
    BitsetTopology,
    stacked_adjacency,
    stacked_hear_counts_at,
    stacked_receivers,
)
from repro.network.topology import WSNTopology
from repro.sim.engine import SimulationTimeout
from repro.obs import events as _events
from repro.obs.bus import EVENT_BUS
from repro.sim.fast_engine import (
    FastRoundEngine,
    FastSlotEngine,
    _FrontierScan,
    _window_for,
)
from repro.sim.links import LinkModel, ReliableLinks
from repro.sim.trace import BroadcastResult
from repro.sim.validation import assert_valid
from repro.utils.validation import require

__all__ = [
    "BroadcastTask",
    "BatchProfile",
    "run_batched",
    "BatchedRoundEngine",
    "BatchedSlotEngine",
]


@dataclass
class BroadcastTask:
    """One single-source broadcast to execute as a lane of a batch.

    Mirrors the keyword surface of :func:`repro.sim.broadcast.run_broadcast`
    (single-source form): the same task parameters produce the bit-identical
    trace through any backend.  ``policy`` is consumed (prepared and run) by
    the batch — pass a fresh instance per task.
    """

    topology: WSNTopology
    source: int
    policy: SchedulingPolicy
    schedule: WakeupSchedule | None = None
    start_time: int = 1
    align_start: bool = False
    max_time: int | None = None
    link_model: LinkModel | None = None


@dataclass
class BatchProfile:
    """Per-phase wall-time split of a batched run (``--profile`` in the CLI).

    Accumulated in place across every batch of a :func:`run_batched` call
    (pass one instance to many calls to aggregate a whole sweep).  The
    three-way split the CLI reports:

    * **kernel** — the stacked interference kernels (hear counts,
      conflicts/receivers, frontier-degree updates);
    * **decisions** — the policy decision calls (batched deciders or the
      per-lane fallback);
    * **bookkeeping** — everything else: wake-time scheduling (hints and
      frontier scans) plus per-advance validation and state updates.
    """

    kernel_s: float = 0.0
    decide_s: float = 0.0
    offer_s: float = 0.0
    apply_s: float = 0.0
    macro_steps: int = 0
    lanes_decided: int = 0
    advances: int = 0

    @property
    def bookkeeping_s(self) -> float:
        """Scheduling plus validation/state time (everything non-kernel,
        non-decision)."""
        return self.offer_s + max(self.apply_s - self.kernel_s, 0.0)

    @property
    def total_s(self) -> float:
        """Total accounted wall time of the run loop's phases."""
        return self.offer_s + self.decide_s + self.apply_s

    def merge(self, other: "BatchProfile") -> None:
        """Fold another profile into this one (field-wise sums)."""
        self.kernel_s += other.kernel_s
        self.decide_s += other.decide_s
        self.offer_s += other.offer_s
        self.apply_s += other.apply_s
        self.macro_steps += other.macro_steps
        self.lanes_decided += other.lanes_decided
        self.advances += other.advances


class _Lane:
    """Per-broadcast state of one batched lane.

    Holds exactly the scalars and Python-side sets of the vectorized
    kernel's slot loop; the boolean/stacked state (coverage, uncovered
    degrees, adjacency) lives in the owning :class:`_LaneBatch` rows.
    """

    __slots__ = (
        "row",
        "topology",
        "view",
        "policy",
        "schedule",
        "link",
        "link_state",
        "source",
        "start_time",
        "time",
        "end_time",
        "limit",
        "covered",
        "covered_count",
        "num_nodes",
        "check_conflicts",
        "skip_idle",
        "hint",
        "index",
        "base",
        "decider_key",
        "state_view",
        "advances",
        "result",
        "frontier_idx",
        "window",
        "scan",
    )

    def __init__(self, task: BroadcastTask, *, prepare: bool) -> None:
        topology = task.topology
        link = ReliableLinks() if task.link_model is None else task.link_model
        policy = task.policy
        if not link.lossless and not getattr(policy, "loss_tolerant", True):
            raise ValueError(
                f"policy {policy.name!r} replays a fixed plan that assumes "
                "reliable delivery and cannot run over lossy links; pick "
                "a loss-tolerant tier from the solver registry "
                "(repro.solvers.SOLVER_TIERS, --list-solvers) or a "
                "frontier scheduler (OPT, G-OPT, E-model, largest-first) "
                "for the loss axis"
            )
        if prepare:
            policy.prepare(topology, task.schedule, task.source)
        # The per-lane Fast engine computes the default time limit (and
        # raises the constructor-time errors: unknown source, schedule not
        # covering the topology) so batched limits — and failure modes —
        # can never drift from the per-cell backends.
        require(task.source in topology, f"unknown source node {task.source}")
        start_time = task.start_time
        if task.schedule is None:
            engine = FastRoundEngine(topology, link_model=link)
            max_time = (
                engine._default_max_rounds(task.source)
                if task.max_time is None
                else task.max_time
            )
        else:
            engine = FastSlotEngine(topology, task.schedule, link_model=link)
            if task.align_start:
                start_time = task.schedule.next_active_slot(task.source, start_time)
            max_time = (
                engine._default_max_slots(task.source)
                if task.max_time is None
                else task.max_time
            )
        require(start_time >= 1, "start_time is 1-based")

        self.topology = topology
        self.view: BitsetTopology = engine._view
        # Hot-loop caches: the id -> row dict and this lane's flat-row base
        # (base is assigned with the row by _LaneBatch).
        self.index = engine._view._index
        self.base = 0
        self.policy = policy
        self.schedule = task.schedule
        self.link = link
        self.link_state = None if link.lossless else link.make_state()
        self.source = task.source
        self.start_time = start_time
        self.time = start_time
        self.end_time = start_time - 1
        self.limit = start_time + max_time
        # Mutable and updated in place per delivery (a frozenset union per
        # advance rehashes the whole set); views hand it to policies as
        # read-only, finish() snapshots it.
        self.covered: set[int] = {task.source}
        self.covered_count = 1
        self.num_nodes = self.view.num_nodes
        self.check_conflicts = getattr(policy, "interference_free", True)
        self.skip_idle = task.schedule is not None and getattr(
            policy, "frontier_driven", False
        )
        self.hint = policy.next_decision_slot
        # Lanes whose policy class overrides select_advance_batch form one
        # decision group per class; everything else shares the mixed
        # fallback group (the default decider dispatches per view.policy).
        self.decider_key = (
            type(policy)
            if type(policy).select_advance_batch
            is not SchedulingPolicy.select_advance_batch
            else SchedulingPolicy
        )
        self.state_view: LaneStateView | None = None
        self.advances: list[Advance] = []
        self.result: BroadcastResult | None = None
        # Frontier bookkeeping, dirty (None) whenever coverage grows; the
        # window/scan pair is created lazily on the first idle-slot probe,
        # so hint-driven lanes never materialize an activity window.
        self.frontier_idx: np.ndarray | None = None
        self.window = None
        self.scan: _FrontierScan | None = None

    def finish(self) -> None:
        self.result = BroadcastResult(
            policy_name=self.policy.name,
            source=self.source,
            start_time=self.start_time,
            end_time=max(self.end_time, self.start_time - 1),
            covered=frozenset(self.covered),
            advances=tuple(self.advances),
            synchronous=self.schedule is None,
            cycle_rate=1 if self.schedule is None else self.schedule.rate,
        )


def _timeout(lane: _Lane) -> SimulationTimeout:
    return SimulationTimeout(
        f"broadcast did not complete by time {lane.limit} "
        f"(covered {lane.covered_count}/{lane.num_nodes} nodes); the policy "
        "or the wake-up schedule is not making progress"
    )


class _LaneBatch:
    """Stacked execution of same-size lanes on lane-local clocks."""

    def __init__(
        self,
        lanes: Sequence[_Lane],
        *,
        batch_decisions: bool = True,
        profile: BatchProfile | None = None,
    ) -> None:
        self.lanes = list(lanes)
        self.batch_decisions = batch_decisions
        self.profile = profile
        self.all_lossless = all(lane.link.lossless for lane in self.lanes)
        self.any_schedule = any(lane.schedule is not None for lane in self.lanes)
        n = self.lanes[0].num_nodes
        self.n = n
        num_lanes = len(self.lanes)
        # uint8 stack: the per-advance gather is memory-bound, so the
        # narrow dtype beats a pre-cast float32 stack (4x the traffic)
        # despite the astype the kernel pays on the gathered rows.
        self.adjacency = stacked_adjacency([lane.view for lane in self.lanes])
        # Flat row -> node id table for the all-lossless apply path: one
        # gather decodes every expected receiver in the batch at once.
        self.ids_flat = (
            np.concatenate([lane.view.node_ids for lane in self.lanes])
            if self.all_lossless
            else None
        )
        self.covered = np.zeros((num_lanes, n), dtype=bool)
        self.covered_flat = self.covered.reshape(-1)
        # Uncovered-degree rows exist for the frontier scan of duty-cycle
        # idle-slot skipping and for batched deciders that read them
        # (policy.batch_frontier); a batch with no such lane never reads
        # them, so it skips both the init and the per-advance update kernel.
        self.track_frontier = any(
            lane.skip_idle or getattr(lane.policy, "batch_frontier", False)
            for lane in self.lanes
        )
        # float32 like the kernel's counts (exact small integers), so the
        # per-advance degree update is a single in-place subtract.
        self.uncovered_degree = (
            np.empty((num_lanes, n), dtype=np.float32) if self.track_frontier else None
        )
        for row, lane in enumerate(self.lanes):
            lane.row = row
            lane.base = row * n
            source_row = lane.view.index_of(lane.source)
            self.covered[row, source_row] = True
            if self.track_frontier:
                # hear_counts of the lone source row is its adjacency row.
                self.uncovered_degree[row] = (
                    lane.view.degrees - self.adjacency[row, source_row]
                )
            # One reusable view per lane: the numpy rows are zero-copy
            # slices of the stacked matrices (they track every applied
            # advance in place); covered/time are refreshed per decision.
            lane.state_view = LaneStateView(
                lane.topology,
                lane.schedule,
                lane.policy,
                bitset=lane.view,
                row=row,
                covered=lane.covered,
                time=lane.time,
                covered_bool=self.covered[row],
                uncovered_degree=(
                    None if self.uncovered_degree is None else self.uncovered_degree[row]
                ),
            )
        # Single-group shortcut: a homogeneous stripe (one decider for every
        # lane) skips the per-step grouping entirely.
        keys = {lane.decider_key for lane in self.lanes}
        self.single_decider = (
            self.lanes[0].policy.select_advance_batch if len(keys) == 1 else None
        )

    # ------------------------------------------------------------------
    def _compute_offer(self, lane: _Lane) -> None:
        """Advance ``lane.time`` to its next offered slot.

        Line-for-line twin of the vectorized kernel's hint fast-forward and
        awake-frontier scan, so the offered-slot sequence of every lane is
        identical to its per-lane run.
        """
        time = lane.time
        hinted = lane.hint(time)
        if hinted is not None and hinted > time:
            time = hinted
        if lane.skip_idle and hinted != time and time <= lane.limit:
            if lane.frontier_idx is None:
                lane.frontier_idx = np.flatnonzero(
                    self.covered[lane.row] & (self.uncovered_degree[lane.row] > 0)
                )
                lane.scan = None
            if lane.window is None:
                lane.window = _window_for(lane.schedule, lane.view)
            if not lane.window.active_rows(lane.frontier_idx, time).any():
                if lane.scan is None:
                    lane.scan = _FrontierScan(lane.window, lane.frontier_idx, time)
                next_slot = lane.scan.next_active(time, lane.limit)
                time = lane.limit + 1 if next_slot is None else next_slot
        if time > lane.limit:
            raise _timeout(lane)
        lane.time = time

    # ------------------------------------------------------------------
    def _select(self, served: list[_Lane]) -> list[Advance | None]:
        """One decision per served lane (batched dispatch or legacy path)."""
        if not self.batch_decisions:
            # Legacy per-lane path: a fresh state object per lane per slot.
            # Kept as the conformance axis the batched protocol is pinned
            # against (and for callers that need the old allocation
            # behavior verbatim).
            decisions: list[Advance | None] = []
            for lane in served:
                state = BroadcastState.for_engine(
                    lane.topology, frozenset(lane.covered), lane.time, lane.schedule
                )
                decisions.append(lane.policy.select_advance(state))
            return decisions
        # View clocks were refreshed by the caller's heap drain (views alias
        # each lane's live covered set, so time is all that changes).
        if self.single_decider is not None:
            result = self.single_decider([lane.state_view for lane in served])
            if len(result) != len(served):
                raise ValueError(
                    f"select_advance_batch returned {len(result)} decisions "
                    f"for {len(served)} lanes"
                )
            return result
        groups: dict[type, list[int]] = {}
        for i, lane in enumerate(served):
            groups.setdefault(lane.decider_key, []).append(i)
        decisions = [None] * len(served)
        for members in groups.values():
            views = [served[i].state_view for i in members]
            result = served[members[0]].policy.select_advance_batch(views)
            if len(result) != len(views):
                raise ValueError(
                    f"select_advance_batch returned {len(result)} decisions "
                    f"for {len(views)} lanes"
                )
            for i, advance in zip(members, result):
                decisions[i] = advance
        return decisions

    # ------------------------------------------------------------------
    def _validate_slow(
        self,
        checked: list,
        conflicts: np.ndarray,
        expected: np.ndarray,
        expected_counts: list[int],
    ) -> None:
        """Per-lane validation in served order — the canonical error path.

        Runs only when the aggregate happy-path check of :meth:`_apply`
        fails; re-derives each lane's verdict with the per-lane kernels so
        the raised error (and which lane raises first) matches the
        per-lane engines exactly.
        """
        for lane, advance in checked:
            tx_idx = lane.view.indices(advance.color)
            if lane.check_conflicts and conflicts[lane.row]:
                pairs = lane.view.conflicting_pairs(tx_idx, self.covered[lane.row])
                raise ValueError(
                    f"policy scheduled conflicting transmitters at time "
                    f"{lane.time}: {pairs}"
                )
            try:
                recorded_idx = lane.view.indices(advance.receivers)
            except KeyError:
                recorded_idx = None
            if (
                recorded_idx is None
                or len(recorded_idx) != expected_counts[lane.row]
                or not expected[lane.row, recorded_idx].all()
            ):
                raise ValueError(
                    "advance.receivers does not match the uncovered neighbours "
                    f"of its transmitters at time {lane.time}"
                )

    # ------------------------------------------------------------------
    def _apply(
        self, served: list[_Lane], decisions: list[Advance | None]
    ) -> None:
        """Validate and apply the proposing lanes' advances, batched.

        The happy path builds every lane's transmitter/receiver coordinates
        as flat Python lists (plain dict lookups — no per-lane numpy
        dispatch), runs the stacked kernels once, and verifies all lanes
        with one aggregate check; any failure falls back to
        :meth:`_validate_slow` for the canonical per-lane error.  On an
        all-lossless batch the validated receiver coordinates double as the
        coverage scatter, so the whole delivery step is two numpy calls.
        ``None`` decisions (lanes idling this slot) are filtered here, in
        the same pass as the per-advance sanity checks.
        """
        if self.all_lossless:
            self._apply_lossless(served, decisions)
        else:
            self._apply_mixed(served, decisions)

    def _apply_lossless(
        self, served: list[_Lane], decisions: list[Advance | None]
    ) -> None:
        """All-lossless fast path: two tight per-lane passes, two kernels.

        Receiver-count validation is fused with the delivery bookkeeping
        (one loop instead of two); lane mutations before a later lane's
        failure are harmless because any failure aborts the whole batch —
        the bool coverage matrix, which is all the slow error path reads,
        scatters only after the final aggregate check.
        """
        n = self.n
        profile = self.profile
        any_schedule = self.any_schedule
        proposals: list[tuple[_Lane, Advance]] = []
        propose = proposals.append
        tx_flat: list[int] = []
        tx_extend = tx_flat.extend
        for lane, advance in zip(served, decisions):
            if advance is None:
                continue
            if advance.time != lane.time:
                raise ValueError(
                    f"policy returned an advance for time {advance.time}, "
                    f"expected {lane.time}"
                )
            color = advance.color
            if not color <= lane.covered:
                not_covered = color - lane.covered
                raise ValueError(
                    f"policy scheduled transmitters that do not hold the message: "
                    f"{sorted(not_covered)}"
                )
            if any_schedule and lane.schedule is not None:
                time = lane.time
                asleep = [
                    u for u in color if not lane.schedule.is_active(u, time)
                ]
                if asleep:
                    raise ValueError(
                        f"policy scheduled sleeping transmitters at slot "
                        f"{time}: {sorted(asleep)}"
                    )
            # Kernel results are order-free, so plain dict gets suffice
            # (covered ⊆ nodes, so the lookups cannot miss after the
            # coverage check above).
            index = lane.index
            base = lane.base
            tx_extend([base + index[u] for u in color])
            propose((lane, advance))
        if not proposals:
            return

        kernel_t0 = perf_counter() if profile is not None else 0.0
        lane_rows, tx_cols = np.divmod(np.array(tx_flat, dtype=np.int64), n)
        counts = stacked_hear_counts_at(self.adjacency, lane_rows, tx_cols)
        conflicts, expected = stacked_receivers(counts, self.covered)
        if profile is not None:
            profile.kernel_s += perf_counter() - kernel_t0
        row_counts = expected.sum(axis=1)

        # Aggregate happy-path verdict for all lanes at once; the slow path
        # re-checks per lane (conflicts before receiver equality, in served
        # order) so errors match the per-lane kernel exactly.
        happy = True
        if conflicts.any():
            happy = not any(
                lane.check_conflicts and conflicts[lane.row]
                for lane, _ in proposals
            )
        flat_idx: np.ndarray | None = None
        if happy:
            # Decode every expected receiver in the batch at once (flat
            # coordinates + node ids, row-major); per-lane validation is
            # then a pure set comparison — no per-node dict lookups — and
            # the same coordinates drive the coverage scatter below.
            flat_idx = np.flatnonzero(expected.reshape(-1))
            ids = self.ids_flat[flat_idx].tolist()
            bounds = np.cumsum(row_counts).tolist()
            for lane, advance in proposals:
                receivers = advance.receivers
                row = lane.row
                seg = ids[bounds[row - 1] if row else 0 : bounds[row]]
                # Equal sizes plus superset over the (distinct) decoded ids
                # is exactly set equality with the kernel's receivers.
                if len(receivers) != len(seg) or not receivers.issuperset(seg):
                    happy = False
                    break
                if seg:
                    lane.covered.update(seg)
                    lane.covered_count += len(seg)
                    lane.end_time = lane.time
                    lane.frontier_idx = None
                lane.advances.append(advance)
        if not happy:
            self._validate_slow(
                proposals, conflicts, expected, row_counts.tolist()
            )
            raise AssertionError(
                "aggregate advance check failed but the per-lane validation "
                "passed"
            )  # pragma: no cover - _validate_slow always raises here

        if profile is not None:
            profile.advances += len(proposals)
        if flat_idx is not None and len(flat_idx):
            kernel_t0 = perf_counter() if profile is not None else 0.0
            self.covered_flat[flat_idx] = True
            if self.track_frontier:
                self.uncovered_degree -= stacked_hear_counts_at(
                    self.adjacency, *np.divmod(flat_idx, n)
                )
            if profile is not None:
                profile.kernel_s += perf_counter() - kernel_t0

    def _apply_mixed(
        self, served: list[_Lane], decisions: list[Advance | None]
    ) -> None:
        """Generic path for batches containing lossy lanes."""
        n = self.n
        profile = self.profile
        checked: list[tuple[_Lane, Advance, object]] = []
        tx_flat: list[int] = []
        for lane, advance in zip(served, decisions):
            if advance is None:
                continue
            if advance.time != lane.time:
                raise ValueError(
                    f"policy returned an advance for time {advance.time}, "
                    f"expected {lane.time}"
                )
            color = advance.color
            if not color <= lane.covered:
                not_covered = color - lane.covered
                raise ValueError(
                    f"policy scheduled transmitters that do not hold the message: "
                    f"{sorted(not_covered)}"
                )
            if lane.schedule is not None:
                time = lane.time
                asleep = [
                    u for u in color if not lane.schedule.is_active(u, time)
                ]
                if asleep:
                    raise ValueError(
                        f"policy scheduled sleeping transmitters at slot "
                        f"{time}: {sorted(asleep)}"
                    )
            base = lane.base
            if lane.link.lossless:
                index = lane.index
                tx_flat.extend([base + index[u] for u in color])
                tx = None
            else:
                # Lossy lanes need the canonical sorted order: the link
                # model consumes its RNG in candidate-pair order.
                tx = lane.view.indices(color)
                tx_flat.extend((base + tx).tolist())
            checked.append((lane, advance, tx))
        if not checked:
            return

        kernel_t0 = perf_counter() if profile is not None else 0.0
        lane_rows, tx_cols = np.divmod(np.array(tx_flat, dtype=np.int64), n)
        counts = stacked_hear_counts_at(self.adjacency, lane_rows, tx_cols)
        conflicts, expected = stacked_receivers(counts, self.covered)
        if profile is not None:
            profile.kernel_s += perf_counter() - kernel_t0
        expected_counts = expected.sum(axis=1).tolist()

        happy = True
        if conflicts.any():
            happy = not any(
                lane.check_conflicts and conflicts[lane.row]
                for lane, _, _ in checked
            )
        recorded_flat: list[int] = []
        # Per-lane flat segments: a lossy lane may deliver a subset, so the
        # delivery loop needs each lane's validated coordinates.
        segments: list[list[int]] = []
        if happy:
            try:
                for lane, advance, _tx in checked:
                    receivers = advance.receivers
                    if len(receivers) != expected_counts[lane.row]:
                        happy = False
                        break
                    index = lane.index
                    base = lane.base
                    segment = [base + index[u] for u in receivers]
                    recorded_flat.extend(segment)
                    segments.append(segment)
            except KeyError:
                happy = False
        if happy and recorded_flat:
            happy = bool(
                expected.take(np.array(recorded_flat, dtype=np.int64)).all()
            )
        if not happy:
            self._validate_slow(
                [(lane, advance) for lane, advance, _tx in checked],
                conflicts,
                expected,
                expected_counts,
            )
            raise AssertionError(
                "aggregate advance check failed but the per-lane validation "
                "passed"
            )  # pragma: no cover - _validate_slow always raises here

        if profile is not None:
            profile.advances += len(checked)
        delivered_flat: list[int] = []
        for (lane, advance, tx), segment in zip(checked, segments):
            if lane.link.lossless:
                recorded = advance
                delivered = advance.receivers
                delivered_segment = segment
            else:
                delivered_bool = lane.link.deliver_bool(
                    lane.link_state,
                    lane.view,
                    tx,
                    expected[lane.row],
                    self.covered[lane.row],
                )
                delivered = lane.view.nodes_from_bool(delivered_bool)
                delivered_segment = (
                    lane.base + np.flatnonzero(delivered_bool)
                ).tolist()
                recorded = dataclasses.replace(
                    advance,
                    receivers=delivered,
                    intended_receivers=advance.receivers,
                )
            if delivered:
                delivered_flat.extend(delivered_segment)
                lane.covered.update(delivered)
                lane.covered_count += len(delivered)
                lane.end_time = lane.time
                lane.frontier_idx = None
            lane.advances.append(recorded)
        if delivered_flat:
            flat = np.array(delivered_flat, dtype=np.int64)
            kernel_t0 = perf_counter() if profile is not None else 0.0
            self.covered.reshape(-1)[flat] = True
            if self.track_frontier:
                self.uncovered_degree -= stacked_hear_counts_at(
                    self.adjacency, *np.divmod(flat, n)
                )
            if profile is not None:
                profile.kernel_s += perf_counter() - kernel_t0

    # ------------------------------------------------------------------
    def run(self) -> None:
        profile = self.profile
        lanes = self.lanes
        # Min-heap of (wake time, lane row): every lane is fast-forwarded
        # to its next offered slot before (re-)entering the heap.  Lanes
        # run on lane-local clocks, so every queued lane is due — each
        # macro-step drains the whole heap in wake order, which keeps the
        # stacked kernels at full stripe width while preserving a
        # deterministic serve (and error) order.
        heap: list[tuple[int, int]] = []
        t0 = perf_counter() if profile is not None else 0.0
        for lane in lanes:
            if lane.covered_count == lane.num_nodes:
                lane.finish()
            else:
                self._compute_offer(lane)
                heap.append((lane.time, lane.row))
        heapq.heapify(heap)
        if profile is not None:
            profile.offer_s += perf_counter() - t0
        heappop = heapq.heappop
        heappush = heapq.heappush
        while heap:
            served: list[_Lane] = []
            while heap:
                lane = lanes[heappop(heap)[1]]
                # Refresh the view clock while the lane is in hand (views
                # alias the live covered set, so time is all that changes).
                lane.state_view.time = lane.time
                served.append(lane)
            if EVENT_BUS.active:
                for lane in served:
                    EVENT_BUS.emit(_events.LaneWoke(lane.row, lane.time))
            if profile is None:
                decisions = self._select(served)
            else:
                t0 = perf_counter()
                decisions = self._select(served)
                profile.decide_s += perf_counter() - t0
                profile.macro_steps += 1
                profile.lanes_decided += len(served)
            if profile is None:
                self._apply(served, decisions)
            else:
                t0 = perf_counter()
                self._apply(served, decisions)
                profile.apply_s += perf_counter() - t0
            t0 = perf_counter() if profile is not None else 0.0
            for lane in served:
                time = lane.time + 1
                if lane.covered_count == lane.num_nodes:
                    lane.time = time
                    lane.finish()
                elif not lane.skip_idle:
                    # Inlined no-idle-skip offer (the hot path: synchronous
                    # lanes and plan-driven duty-cycle lanes) — identical to
                    # _compute_offer minus the frontier-scan branch.
                    hinted = lane.hint(time)
                    if hinted is not None and hinted > time:
                        time = hinted
                    if time > lane.limit:
                        raise _timeout(lane)
                    lane.time = time
                    heappush(heap, (time, lane.row))
                else:
                    lane.time = time
                    self._compute_offer(lane)
                    heappush(heap, (lane.time, lane.row))
            if profile is not None:
                profile.offer_s += perf_counter() - t0


def run_batched(
    tasks: Sequence[BroadcastTask],
    *,
    batch: int = 0,
    validate: bool = True,
    prepare: bool = True,
    batch_decisions: bool = True,
    profile: BatchProfile | None = None,
) -> list[BroadcastResult]:
    """Execute many independent broadcasts through the stacked kernel.

    Tasks are grouped by node count (stacking requires one shape per
    batch) and each group is split into chunks of at most ``batch`` lanes
    (``0`` batches a whole group at once); results come back in task
    order.  Lanes are independent, so any grouping or chunking produces
    the bit-identical traces — ``batch`` is purely a memory/throughput
    knob (an ``(L, n, n)`` uint8 tensor per chunk).

    ``batch_decisions`` selects the decision path: ``True`` (the default)
    decides lane groups through
    :meth:`~repro.core.policies.SchedulingPolicy.select_advance_batch`
    over reusable :class:`~repro.core.advance.LaneStateView` objects;
    ``False`` forces the legacy per-lane ``select_advance`` calls with a
    fresh state per lane per slot.  Both paths are bit-identical by
    contract (the conformance suites pin them against each other).

    ``profile`` accumulates a per-phase timing split
    (:class:`BatchProfile`) across every batch of the call.

    ``validate`` re-checks every trace against the network model (the
    vectorized validation backend), exactly like
    :func:`~repro.sim.broadcast.run_broadcast`; ``prepare=False`` skips the
    policies' ``prepare`` hook for callers that already invoked it.
    """
    require(batch >= 0, "batch must be >= 0 (0 = one batch per node count)")
    task_list = list(tasks)
    results: list[BroadcastResult | None] = [None] * len(task_list)
    groups: dict[int, list[int]] = {}
    for index, task in enumerate(task_list):
        groups.setdefault(task.topology.num_nodes, []).append(index)
    for members in groups.values():
        chunk_size = batch if batch > 0 else len(members)
        for begin in range(0, len(members), chunk_size):
            chunk = members[begin : begin + chunk_size]
            lanes = [_Lane(task_list[index], prepare=prepare) for index in chunk]
            _LaneBatch(
                lanes, batch_decisions=batch_decisions, profile=profile
            ).run()
            for index, lane in zip(chunk, lanes):
                results[index] = lane.result
    if validate:
        for task, result in zip(task_list, results):
            link = task.link_model
            assert_valid(
                task.topology,
                result,
                schedule=task.schedule,
                backend="vectorized",
                lossy=link is not None and not link.lossless,
            )
    return [result for result in results if result is not None]


class BatchedRoundEngine(FastRoundEngine):
    """Round-based engine routing through the stacked kernel at ``L = 1``.

    Inherits the vectorized engine's constructor, default limits and
    multi-source ``run_multi`` (multi-source contention is cross-message
    sequential, so batching buys nothing there); single-source ``run``
    executes the real batched kernel so that every parity/conformance
    suite exercises the same code path sweeps use.
    """

    def run(
        self,
        policy: SchedulingPolicy,
        source: int,
        *,
        start_time: int = 1,
        max_rounds: int | None = None,
    ) -> BroadcastResult:
        task = BroadcastTask(
            topology=self.topology,
            source=source,
            policy=policy,
            schedule=None,
            start_time=start_time,
            max_time=max_rounds,
            link_model=self.link_model,
        )
        return run_batched([task], validate=False, prepare=False)[0]


class BatchedSlotEngine(FastSlotEngine):
    """Duty-cycle engine routing through the stacked kernel at ``L = 1``."""

    def run(
        self,
        policy: SchedulingPolicy,
        source: int,
        *,
        start_time: int = 1,
        align_start: bool = False,
        max_slots: int | None = None,
    ) -> BroadcastResult:
        task = BroadcastTask(
            topology=self.topology,
            source=source,
            policy=policy,
            schedule=self.schedule,
            start_time=start_time,
            align_start=align_start,
            max_time=max_slots,
            link_model=self.link_model,
        )
        return run_batched([task], validate=False, prepare=False)[0]
