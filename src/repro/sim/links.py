"""Link models: the delivery semantics of the composable simulation core.

The engines in :mod:`repro.sim.engine` and :mod:`repro.sim.fast_engine`
share one broadcast kernel (per backend) parameterised by a
:class:`LinkModel` strategy.  The policy proposes an advance, the engine
validates it against the paper's network model, and the link model decides
which of the advance's intended receivers actually get the message:

* :class:`ReliableLinks` — every delivery succeeds (the paper's model);
* :class:`IndependentLossLinks` — each (transmitter, uncovered neighbour)
  delivery fails independently with probability ``p`` (the §VI robustness
  model): a receiver is covered iff at least one delivery it can hear
  succeeds.

Determinism contract
--------------------
A lossy run consumes exactly one uniform draw per *candidate pair* — a
``(transmitter, receiver)`` pair with the receiver an uncovered neighbour
of the transmitter — enumerated in ascending ``(transmitter id, receiver
id)`` order within each advance.  Both the set-based implementation
(:meth:`LinkModel.deliver`) and the numpy-bitset implementation
(:meth:`LinkModel.deliver_bool`) follow that exact order, and numpy's
``Generator.random(n)`` produces the same stream as ``n`` scalar
``Generator.random()`` calls, so the two backends produce **bit-identical
traces for the same (model, seed)**.  The experiment runner derives the
per-cell loss seed by splitting the cell seed on the ``"link-loss"`` path
(see :mod:`repro.experiments.runner`), which keeps sweep records
bit-identical for any worker count and either engine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.advance import Advance
from repro.network.bitset import BitsetTopology
from repro.network.topology import WSNTopology
from repro.utils.rng import make_rng
from repro.utils.validation import check_probability

__all__ = [
    "LinkModel",
    "ReliableLinks",
    "IndependentLossLinks",
    "LINK_MODELS",
    "link_model_names",
    "build_link_model",
]


class LinkModel(ABC):
    """Delivery semantics strategy shared by both engine backends.

    A link model is immutable configuration; any per-run randomness lives in
    the state object returned by :meth:`make_state`, which the engine
    creates once per simulated broadcast.  That keeps a single model
    instance reusable across runs (and across the policies of a sweep cell)
    with every run reproducing the same delivery pattern for the same seed.
    """

    #: Registry name (also recorded in sweep records).
    name: str = "link-model"

    #: True when every delivery succeeds.  The engines keep the original
    #: zero-overhead code path (no delivery step, no trace rewriting) for
    #: lossless models, so the reliable fast path is bit-for-bit the
    #: pre-refactor engine.
    lossless: bool = False

    #: Multiplier for the engines' *default* time limits (explicit
    #: ``max_time`` values are never stretched): lossy runs need roughly
    #: ``1 / (1 - p)`` attempts per delivery, so the reliable worst-case
    #: bound would trip prematurely at high loss rates.
    limit_stretch: float = 1.0

    def make_state(self) -> object | None:
        """Per-run delivery state (e.g. a seeded RNG); ``None`` if stateless."""
        return None

    @abstractmethod
    def deliver(
        self,
        state: object | None,
        topology: WSNTopology,
        advance: Advance,
        covered: frozenset[int],
    ) -> frozenset[int]:
        """The subset of ``advance.receivers`` actually delivered (set-based)."""

    @abstractmethod
    def deliver_bool(
        self,
        state: object | None,
        view: BitsetTopology,
        tx_idx: np.ndarray,
        expected_bool: np.ndarray,
        covered_bool: np.ndarray,
    ) -> np.ndarray:
        """The delivered receivers as a boolean vector (bitset-based).

        Must consume randomness identically to :meth:`deliver` so the two
        backends stay bit-identical for the same ``(model, seed)``.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class ReliableLinks(LinkModel):
    """The paper's model: every scheduled delivery succeeds."""

    name = "reliable"
    lossless = True
    loss_probability = 0.0

    def deliver(self, state, topology, advance, covered):
        return advance.receivers

    def deliver_bool(self, state, view, tx_idx, expected_bool, covered_bool):
        return expected_bool


class IndependentLossLinks(LinkModel):
    """Independent per-link delivery failures with probability ``p`` (§VI).

    Each candidate pair — a transmitter of the advance and one of its
    uncovered neighbours — fails independently with probability
    ``loss_probability``; a receiver covered by several same-round
    transmitters receives the message iff at least one of those deliveries
    succeeds.  ``loss_probability=0.0`` is declared lossless, so it takes
    the reliable engines' unmodified code path and produces a trace *equal*
    to :class:`ReliableLinks` (the identity the test suite pins down).
    """

    name = "independent-loss"

    def __init__(self, loss_probability: float, *, seed: int | None = 0) -> None:
        check_probability("loss_probability", loss_probability)
        self.loss_probability = loss_probability
        self.seed = seed
        self.lossless = loss_probability == 0.0
        self.limit_stretch = 1.0 / max(1.0 - loss_probability, 0.05)

    def make_state(self) -> np.random.Generator:
        return make_rng(self.seed)

    def deliver(self, state, topology, advance, covered):
        rng = state
        p = self.loss_probability
        delivered: set[int] = set()
        # Canonical draw order: ascending (transmitter id, receiver id).
        # Every candidate pair consumes a draw — no short-circuit for
        # receivers already delivered this round — so the bitset
        # implementation can consume the stream as one vectorized block.
        for transmitter in sorted(advance.color):
            for receiver in sorted(topology.neighbors(transmitter)):
                if receiver in covered:
                    continue
                if rng.random() >= p:
                    delivered.add(receiver)
        return frozenset(delivered)

    def deliver_bool(self, state, view, tx_idx, expected_bool, covered_bool):
        rng = state
        rows, cols = view.delivery_candidates(tx_idx, covered_bool)
        success = rng.random(len(cols)) >= self.loss_probability
        delivered = np.zeros(view.num_nodes, dtype=bool)
        delivered[cols[success]] = True
        return delivered


#: Registry of link models selectable by name (``SweepConfig.link_model``,
#: the CLI's ``--link-model``): ``name -> factory(loss_probability, seed)``.
LINK_MODELS = {
    ReliableLinks.name: lambda loss_probability, seed: ReliableLinks(),
    IndependentLossLinks.name: lambda loss_probability, seed: IndependentLossLinks(
        loss_probability, seed=seed
    ),
}


def link_model_names() -> list[str]:
    """The registered link-model names, sorted."""
    return sorted(LINK_MODELS)


def build_link_model(
    name: str, *, loss_probability: float = 0.0, seed: int | None = 0
) -> LinkModel:
    """Instantiate a registered link model by name.

    ``"reliable"`` ignores both parameters; ``"independent-loss"`` uses
    them as the per-link failure probability and the RNG seed of the
    dedicated loss stream.
    """
    try:
        factory = LINK_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown link model {name!r}; expected one of {link_model_names()}"
        ) from None
    return factory(loss_probability, seed)
