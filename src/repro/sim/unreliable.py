"""Broadcasting over unreliable links (the robustness concern of §VI).

The related-work section points out that schedulers relying on "healthy,
interference-free links" suffer retransmissions and even live-lock once
signals fail.  The conflict-aware schedulers of this paper degrade
gracefully: a node that misses a transmission simply stays uncovered, so it
remains part of the frontier's uncovered set and a later advance re-serves
it — no protocol change is needed.  This module provides the lossy engines
that exercise exactly that behaviour, plus a small experiment helper used by
the robustness example and the reliability ablation bench.

Loss model
----------
Each (transmitter, potential receiver) delivery in an advance fails
independently with probability ``loss_probability``.  A receiver covered by
several same-round transmitters of the selected relay set would only hear
garbage anyway if those transmitters conflicted, so — consistent with the
interference model — it receives the message iff the delivery from at least
one transmitter it can hear succeeds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policies import SchedulingPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.topology import WSNTopology
from repro.sim.engine import RoundEngine, SimulationTimeout, SlotEngine
from repro.sim.trace import BroadcastResult
from repro.utils.rng import derive_seed, make_rng
from repro.utils.validation import check_probability

__all__ = ["LossyRoundEngine", "LossySlotEngine", "run_lossy_broadcast", "LossySweepPoint"]


class _LossMixin:
    """Shared delivery-failure logic for the lossy engines."""

    def _init_loss(self, loss_probability: float, seed: int | None) -> None:
        check_probability("loss_probability", loss_probability)
        self._loss_probability = loss_probability
        self._loss_rng = make_rng(seed)

    @property
    def loss_probability(self) -> float:
        """Per-link delivery failure probability."""
        return self._loss_probability

    def _apply_losses(self, advance, covered):
        """Return the receivers that actually got the message this round."""
        if self._loss_probability == 0.0:
            return advance.receivers
        delivered: set[int] = set()
        for transmitter in sorted(advance.color):
            for receiver in sorted(self.topology.neighbors(transmitter)):
                if receiver in covered or receiver in delivered:
                    continue
                if self._loss_rng.random() >= self._loss_probability:
                    delivered.add(receiver)
        return frozenset(delivered)

    def _run(self, policy, source, start_time, limit, schedule):  # type: ignore[override]
        """The engine loop of :class:`_EngineBase`, with lossy deliveries.

        The structure mirrors the reliable engine; the only difference is
        that the receivers actually covered are the subset of the advance's
        intended receivers whose delivery succeeded.
        """
        from repro.core.advance import Advance, BroadcastState
        from repro.utils.validation import require

        require(source in self.topology, f"unknown source node {source}")
        require(start_time >= 1, "start_time is 1-based")
        covered: frozenset[int] = frozenset({source})
        advances: list[Advance] = []
        time = start_time
        end_time = start_time - 1
        full = self.topology.node_set

        while covered != full:
            if time > limit:
                raise SimulationTimeout(
                    f"lossy broadcast did not complete by time {limit} "
                    f"(covered {len(covered)}/{len(full)} nodes, "
                    f"loss probability {self._loss_probability})"
                )
            state = BroadcastState(
                topology=self.topology, covered=covered, time=time, schedule=schedule
            )
            advance = policy.select_advance(state)
            if advance is not None:
                self._check_advance(
                    advance,
                    covered,
                    time,
                    schedule,
                    check_conflicts=getattr(policy, "interference_free", True),
                )
                delivered = self._apply_losses(advance, covered)
                recorded = Advance(
                    time=advance.time,
                    color=advance.color,
                    receivers=delivered,
                    color_index=advance.color_index,
                    num_colors=advance.num_colors,
                    note=advance.note,
                )
                covered = covered | delivered
                if delivered:
                    end_time = time
                advances.append(recorded)
            time += 1

        return BroadcastResult(
            policy_name=policy.name,
            source=source,
            start_time=start_time,
            end_time=max(end_time, start_time - 1),
            covered=covered,
            advances=tuple(advances),
            synchronous=schedule is None,
            cycle_rate=1 if schedule is None else schedule.rate,
        )


class LossyRoundEngine(_LossMixin, RoundEngine):
    """Round-based engine with independent per-link delivery failures."""

    def __init__(
        self,
        topology: WSNTopology,
        *,
        loss_probability: float,
        seed: int | None = 0,
    ) -> None:
        RoundEngine.__init__(self, topology)
        self._init_loss(loss_probability, seed)


class LossySlotEngine(_LossMixin, SlotEngine):
    """Slot-based (duty-cycle) engine with per-link delivery failures."""

    def __init__(
        self,
        topology: WSNTopology,
        schedule: WakeupSchedule,
        *,
        loss_probability: float,
        seed: int | None = 0,
    ) -> None:
        SlotEngine.__init__(self, topology, schedule)
        self._init_loss(loss_probability, seed)


def run_lossy_broadcast(
    topology: WSNTopology,
    source: int,
    policy: SchedulingPolicy,
    *,
    loss_probability: float,
    schedule: WakeupSchedule | None = None,
    seed: int | None = 0,
    start_time: int = 1,
    align_start: bool = False,
    max_time: int | None = None,
) -> BroadcastResult:
    """Run one broadcast over unreliable links and return the trace.

    Mirrors :func:`repro.sim.broadcast.run_broadcast` (including the policy
    ``prepare`` hook); the default time limit is scaled up by the expected
    number of retransmissions ``1 / (1 - p)`` so that high loss rates do not
    trip the reliable engine's timeout prematurely.
    """
    check_probability("loss_probability", loss_probability)
    policy.prepare(topology, schedule, source)
    stretch = 1.0 / max(1.0 - loss_probability, 0.05)
    if schedule is None:
        engine = LossyRoundEngine(
            topology, loss_probability=loss_probability, seed=seed
        )
        depth = max(topology.eccentricity(source), 1)
        default_rounds = int((depth * max(topology.max_degree(), 1) + depth + 8) * stretch)
        return engine.run(
            policy, source, start_time=start_time, max_rounds=max_time or default_rounds
        )
    slot_engine = LossySlotEngine(
        topology, schedule, loss_probability=loss_probability, seed=seed
    )
    depth = max(topology.eccentricity(source), 1)
    worst_per_layer = 2 * schedule.max_rate * (max(topology.max_degree(), 1) + 2)
    default_slots = int((depth * worst_per_layer + 4 * schedule.max_rate) * stretch)
    return slot_engine.run(
        policy,
        source,
        start_time=start_time,
        align_start=align_start,
        max_slots=max_time or default_slots,
    )


@dataclass(frozen=True)
class LossySweepPoint:
    """One point of a reliability sweep: loss probability vs mean latency."""

    loss_probability: float
    mean_latency: float
    mean_extra_rounds: float
    completed: int
    attempts: int


def reliability_sweep(
    topology: WSNTopology,
    source: int,
    policy_factory,
    *,
    loss_probabilities=(0.0, 0.1, 0.2, 0.3),
    repetitions: int = 3,
    base_seed: int = 0,
) -> list[LossySweepPoint]:
    """Sweep the loss probability and report latency inflation.

    ``policy_factory`` is called once per run (policies may be stateful).
    The zero-loss latency of the first point is used as the baseline for the
    ``mean_extra_rounds`` column.
    """
    points: list[LossySweepPoint] = []
    baseline: float | None = None
    for probability in loss_probabilities:
        latencies = []
        for repetition in range(repetitions):
            seed = derive_seed(base_seed, "loss", probability, repetition)
            result = run_lossy_broadcast(
                topology,
                source,
                policy_factory(),
                loss_probability=probability,
                seed=seed,
            )
            latencies.append(result.latency)
        mean_latency = sum(latencies) / len(latencies)
        if baseline is None:
            baseline = mean_latency
        points.append(
            LossySweepPoint(
                loss_probability=probability,
                mean_latency=mean_latency,
                mean_extra_rounds=mean_latency - baseline,
                completed=len(latencies),
                attempts=repetitions,
            )
        )
    return points
