"""Broadcasting over unreliable links (the robustness concern of §VI).

The related-work section points out that schedulers relying on "healthy,
interference-free links" suffer retransmissions and even live-lock once
signals fail.  The conflict-aware schedulers of this paper degrade
gracefully: a node that misses a transmission simply stays uncovered, so it
remains part of the frontier's uncovered set and a later advance re-serves
it — no protocol change is needed.

Since the composable-core refactor this module no longer owns an engine
loop: the loss model lives in :class:`repro.sim.links.IndependentLossLinks`
and runs inside the shared kernels of *both* backends, so
``run_broadcast(..., link_model=..., engine=...)`` is the canonical entry
point and the loss axis composes with every scenario, duty model, engine
and worker count (see :mod:`repro.experiments.runner`).  What remains here:

* :func:`run_lossy_broadcast` — a convenience wrapper over
  :func:`~repro.sim.broadcast.run_broadcast` for one lossy run;
* :class:`LossyRoundEngine` / :class:`LossySlotEngine` — **deprecated**
  shims kept for source compatibility: each is exactly the corresponding
  reference engine (resolved through
  :data:`~repro.sim.broadcast.ENGINE_BACKENDS`, never imported directly)
  constructed with an :class:`IndependentLossLinks` model;
* :func:`reliability_sweep` — the small latency-inflation helper used by
  the robustness example and the reliability ablation bench.

Note on traces: a lossy advance records the *delivered* receivers in
``Advance.receivers`` and the uncovered neighbours the advance would have
reached over reliable links in ``Advance.intended_receivers``, so energy
and transmission accounting (which keys off ``Advance.color``) charges
retransmissions correctly and ``BroadcastResult.retransmissions`` /
``failed_deliveries`` can be derived from the trace alone.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.core.policies import SchedulingPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.topology import WSNTopology
from repro.sim.broadcast import ENGINE_BACKENDS, run_broadcast
from repro.sim.links import IndependentLossLinks
from repro.sim.trace import BroadcastResult
from repro.utils.rng import derive_seed

__all__ = ["LossyRoundEngine", "LossySlotEngine", "run_lossy_broadcast", "LossySweepPoint"]

_REFERENCE_ROUND, _REFERENCE_SLOT = ENGINE_BACKENDS["reference"]


class LossyRoundEngine(_REFERENCE_ROUND):
    """Deprecated shim: the reference round engine with independent losses.

    Prefer ``run_broadcast(..., link_model=IndependentLossLinks(p, seed=s))``,
    which additionally composes with the vectorized backend.
    """

    def __init__(
        self,
        topology: WSNTopology,
        *,
        loss_probability: float,
        seed: int | None = 0,
    ) -> None:
        warnings.warn(
            "LossyRoundEngine is a deprecated shim; use run_broadcast(..., "
            "link_model=IndependentLossLinks(p, seed=s)).  Note the lossy RNG "
            "stream changed with the composable-core refactor (one draw per "
            "candidate pair, canonical order), so seed-pinned traces differ "
            "from pre-refactor runs.",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            topology, link_model=IndependentLossLinks(loss_probability, seed=seed)
        )

    @property
    def loss_probability(self) -> float:
        """Per-link delivery failure probability."""
        return self.link_model.loss_probability


class LossySlotEngine(_REFERENCE_SLOT):
    """Deprecated shim: the reference slot engine with independent losses.

    Prefer ``run_broadcast(..., schedule=..., link_model=...)``.
    """

    def __init__(
        self,
        topology: WSNTopology,
        schedule: WakeupSchedule,
        *,
        loss_probability: float,
        seed: int | None = 0,
    ) -> None:
        warnings.warn(
            "LossySlotEngine is a deprecated shim; use run_broadcast(..., "
            "schedule=..., link_model=IndependentLossLinks(p, seed=s)).  Note "
            "the lossy RNG stream changed with the composable-core refactor, "
            "so seed-pinned traces differ from pre-refactor runs.",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            topology,
            schedule,
            link_model=IndependentLossLinks(loss_probability, seed=seed),
        )

    @property
    def loss_probability(self) -> float:
        """Per-link delivery failure probability."""
        return self.link_model.loss_probability


def run_lossy_broadcast(
    topology: WSNTopology,
    source: int,
    policy: SchedulingPolicy,
    *,
    loss_probability: float,
    schedule: WakeupSchedule | None = None,
    seed: int | None = 0,
    start_time: int = 1,
    align_start: bool = False,
    max_time: int | None = None,
    engine: str = "reference",
    validate: bool | None = None,
) -> BroadcastResult:
    """Run one broadcast over unreliable links and return the trace.

    A thin wrapper over :func:`repro.sim.broadcast.run_broadcast` with an
    :class:`~repro.sim.links.IndependentLossLinks` model: the default time
    limit is scaled up by the expected number of retransmissions
    ``1 / (1 - p)`` (via the link model's ``limit_stretch``) so that high
    loss rates do not trip the reliable worst-case bound prematurely, and
    ``engine`` selects any registered backend — the traces are
    bit-identical per (probability, seed) across backends.

    ``validate`` defaults to the policy's ``interference_free`` flag: the
    trace validator re-imposes interference-freedom, which policies like
    idealised flooding deliberately opt out of (pre-refactor, lossy runs
    were never validated at all, so this keeps those callers working).
    """
    if validate is None:
        validate = getattr(policy, "interference_free", True)
    return run_broadcast(
        topology,
        source,
        policy,
        schedule=schedule,
        start_time=start_time,
        align_start=align_start,
        max_time=max_time,
        validate=validate,
        engine=engine,
        link_model=IndependentLossLinks(loss_probability, seed=seed),
    )


@dataclass(frozen=True)
class LossySweepPoint:
    """One point of a reliability sweep: loss probability vs mean latency."""

    loss_probability: float
    mean_latency: float
    mean_extra_rounds: float
    completed: int
    attempts: int


def reliability_sweep(
    topology: WSNTopology,
    source: int,
    policy_factory,
    *,
    loss_probabilities=(0.0, 0.1, 0.2, 0.3),
    repetitions: int = 3,
    base_seed: int = 0,
    engine: str = "reference",
) -> list[LossySweepPoint]:
    """Sweep the loss probability and report latency inflation.

    ``policy_factory`` is called once per run (policies may be stateful).
    The zero-loss latency of the first point is used as the baseline for the
    ``mean_extra_rounds`` column.
    """
    points: list[LossySweepPoint] = []
    baseline: float | None = None
    for probability in loss_probabilities:
        latencies = []
        for repetition in range(repetitions):
            seed = derive_seed(base_seed, "loss", probability, repetition)
            result = run_lossy_broadcast(
                topology,
                source,
                policy_factory(),
                loss_probability=probability,
                seed=seed,
                engine=engine,
            )
            latencies.append(result.latency)
        mean_latency = sum(latencies) / len(latencies)
        if baseline is None:
            baseline = mean_latency
        points.append(
            LossySweepPoint(
                loss_probability=probability,
                mean_latency=mean_latency,
                mean_extra_rounds=mean_latency - baseline,
                completed=len(latencies),
                attempts=repetitions,
            )
        )
    return points
