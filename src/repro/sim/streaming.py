"""Streaming broadcast execution: per-advance emission, O(1) trace memory.

A materialized :class:`~repro.sim.trace.BroadcastResult` holds every advance
of the broadcast.  For the paper's grids (50-300 nodes) that is nothing; for
very large deployments the advance list — each entry carrying transmitter
and receiver frozensets — becomes the dominant allocation of a run, well
beyond the ``(n, n)`` adjacency view.  :func:`stream_broadcast` runs the
same vectorized slot loop as ``run_broadcast`` but hands each recorded
advance to a caller-supplied ``sink`` the moment it is applied and keeps
**no advance list at all**: once the sink returns, the engine drops its
reference, so a sink that aggregates (counts, histograms, an on-disk
writer) runs a 100k-node broadcast in memory proportional to the network,
not to the trace.

The stream is produced by the engine's ``_iter_run`` generator — the same
code path ``run_broadcast`` materializes — so the sequence of advances (and
the returned :class:`StreamSummary`'s metrics) is bit-identical to the
materialized trace's.  The memory-regression test in
``tests/unit/test_streaming.py`` pins the no-materialization property with
weak references: after each sink call returns, the advance must be
collectable.

Only the numpy backends stream (``"vectorized"`` and ``"batched"``, which
share the generator); the reference engine is the materialized oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.policies import SchedulingPolicy
from repro.core.advance import Advance
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.topology import WSNTopology
from repro.obs import events as _events
from repro.obs.bus import EVENT_BUS
from repro.sim.fast_engine import FastRoundEngine, FastSlotEngine
from repro.sim.links import LinkModel, ReliableLinks
from repro.utils.validation import require

__all__ = ["StreamSummary", "StreamSinkError", "stream_broadcast"]


class StreamSinkError(RuntimeError):
    """A streaming sink raised mid-broadcast (context attached).

    The engine cannot roll a half-stepped broadcast back, so the run is
    abandoned — but with the failing advance, its slot, and how many
    advances had already streamed, instead of a bare traceback from
    somewhere inside the slot loop.  The original exception rides along as
    ``__cause__``.
    """

    def __init__(
        self, advance: Advance, num_advances: int, error: BaseException
    ) -> None:
        self.advance = advance
        self.num_advances = num_advances
        super().__init__(
            f"stream sink failed on advance {num_advances} at time "
            f"{advance.time} ({len(advance.color)} transmitter(s), "
            f"{len(advance.receivers)} receiver(s)): "
            f"{type(error).__name__}: {error}"
        )

#: Backends whose engines expose the streaming generator.
STREAMING_BACKENDS = ("vectorized", "batched")


@dataclass(frozen=True)
class StreamSummary:
    """Aggregate outcome of one streamed broadcast (no advance list).

    Carries exactly the scalar metrics of a materialized
    :class:`~repro.sim.trace.BroadcastResult` — same definitions, same
    values — plus the covered-node count instead of the covered set.
    """

    policy_name: str
    source: int
    start_time: int
    end_time: int
    covered_count: int
    num_advances: int
    total_transmissions: int
    failed_deliveries: int
    synchronous: bool
    cycle_rate: int

    @property
    def latency(self) -> int:
        """Elapsed rounds/slots ``t_e - t_s + 1`` (see ``BroadcastResult``)."""
        return self.end_time - self.start_time + 1

    @property
    def idle_time(self) -> int:
        """Rounds/slots in the broadcast window without any transmission."""
        return self.latency - self.num_advances


def stream_broadcast(
    topology: WSNTopology,
    source: int,
    policy: SchedulingPolicy,
    *,
    schedule: WakeupSchedule | None = None,
    start_time: int = 1,
    align_start: bool = False,
    max_time: int | None = None,
    engine: str = "vectorized",
    link_model: LinkModel | None = None,
    sink: Callable[[Advance], None] | None = None,
) -> StreamSummary:
    """Run one broadcast, streaming each advance to ``sink``.

    The keyword surface mirrors :func:`~repro.sim.broadcast.run_broadcast`
    (single-source form); ``sink`` receives every recorded advance in
    chronological order (``None`` discards them, leaving only the summary).
    The advance sequence and all summary metrics are bit-identical to the
    materialized ``run_broadcast`` trace of the same parameters.  A sink
    that raises aborts the stream as a :class:`StreamSinkError` carrying
    the failing advance, its slot, and the advance count so far (the
    broadcast is half-stepped and cannot be resumed).

    Validation is the one deliberate difference: re-checking a trace needs
    the whole trace, so streamed runs are not re-validated — the engine's
    own per-advance checks (coverage, awake transmitters, interference,
    receiver equality) still apply.  Stream into a list and call
    :func:`~repro.sim.validation.validate_broadcast` to get both.
    """
    if engine not in STREAMING_BACKENDS:
        raise ValueError(
            f"engine {engine!r} cannot stream; streaming backends: "
            f"{list(STREAMING_BACKENDS)} (the reference engine materializes "
            "traces — it is the oracle the streaming kernel is tested against)"
        )
    link = ReliableLinks() if link_model is None else link_model
    if not link.lossless and not getattr(policy, "loss_tolerant", True):
        raise ValueError(
            f"policy {policy.name!r} replays a fixed plan that assumes reliable "
            "delivery and cannot run over lossy links; pick a loss-tolerant "
            "tier from the solver registry (repro.solvers.SOLVER_TIERS, "
            "--list-solvers) or a frontier scheduler (OPT, G-OPT, E-model, "
            "largest-first) for the loss axis"
        )
    require(source in topology, f"unknown source node {source}")
    policy.prepare(topology, schedule, source)
    if schedule is None:
        round_engine = FastRoundEngine(topology, link_model=link)
        limit = start_time + (
            round_engine._default_max_rounds(source) if max_time is None else max_time
        )
        stepper = round_engine._iter_run(policy, source, start_time, limit, None)
    else:
        slot_engine = FastSlotEngine(topology, schedule, link_model=link)
        if align_start:
            start_time = schedule.next_active_slot(source, start_time)
        limit = start_time + (
            slot_engine._default_max_slots(source) if max_time is None else max_time
        )
        stepper = slot_engine._iter_run(policy, source, start_time, limit, schedule)

    num_advances = 0
    total_transmissions = 0
    failed_deliveries = 0
    while True:
        try:
            advance = next(stepper)
        except StopIteration as done:
            covered, end_time = done.value
            break
        num_advances += 1
        total_transmissions += len(advance.color)
        failed_deliveries += advance.failed_deliveries
        if EVENT_BUS.active:
            EVENT_BUS.emit(
                _events.SlotAdvanced(
                    advance.time, len(advance.color), len(advance.receivers)
                )
            )
        if sink is not None:
            try:
                sink(advance)
            except Exception as error:
                raise StreamSinkError(advance, num_advances, error) from error
        # Drop the local reference before the next step so the advance is
        # collectable as soon as the sink lets go of it.
        del advance

    return StreamSummary(
        policy_name=policy.name,
        source=source,
        start_time=start_time,
        end_time=max(end_time, start_time - 1),
        covered_count=len(covered),
        num_advances=num_advances,
        total_transmissions=total_transmissions,
        failed_deliveries=failed_deliveries,
        synchronous=schedule is None,
        cycle_rate=1 if schedule is None else schedule.rate,
    )
