"""Independent validation of broadcast traces.

The engines already reject invalid advances while simulating; this module
re-checks a finished :class:`~repro.sim.trace.BroadcastResult` *from scratch*
(replaying coverage from the source) so that tests, property-based checks and
the experiment harness can assert the network-model invariants without
trusting the engine's internal bookkeeping.  The checks are exactly the
paper's model constraints:

1.  every transmitter held the message before transmitting;
2.  (duty-cycle) every transmitter was awake in its transmission slot;
3.  transmitters of the same round/slot are mutually interference-free with
    respect to the nodes that still needed the message;
4.  the recorded receivers are exactly the uncovered neighbours of the
    transmitters — or, for a lossy trace (``lossy=True``), a *subset* of
    them, with the advance's ``intended_receivers`` matching the model's
    expected receivers exactly;
5.  coverage is complete at the end and every node received the message
    exactly once (no duplicate delivery in the trace);
6.  times are within ``[start_time, end_time]`` and strictly increasing.

Lossy traces (produced by ``run_broadcast(..., link_model=...)`` with a
lossy :class:`~repro.sim.links.LinkModel`) are validated against the
*delivered* receivers on both backends: every constraint above still holds,
only the receiver-equality of check 4 relaxes to subset-plus-intent.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations

import numpy as np

from repro.dutycycle.schedule import WakeupSchedule
from repro.network.bitset import bitset_view
from repro.network.interference import conflicting_pairs, receivers_of
from repro.network.topology import WSNTopology
from repro.sim.trace import BroadcastResult, MultiBroadcastResult

__all__ = [
    "ScheduleViolation",
    "validate_broadcast",
    "assert_valid",
    "validate_multi_broadcast",
    "assert_valid_multi",
]


class ScheduleViolation(AssertionError):
    """A broadcast trace violates the paper's network model."""


def validate_broadcast(
    topology: WSNTopology,
    result: BroadcastResult,
    *,
    schedule: WakeupSchedule | None = None,
    require_complete: bool = True,
    backend: str = "reference",
    lossy: bool = False,
) -> list[str]:
    """Return a list of violation descriptions (empty when the trace is valid).

    ``backend="vectorized"`` runs the same checks over the numpy bitset view
    (:mod:`repro.network.bitset`) and produces the identical violation list;
    it is what ``run_broadcast(engine="vectorized")`` uses so that validation
    does not hand the hot path back to Python set loops.  The reference
    backend remains the oracle the vectorized one is tested against.

    ``lossy=True`` validates a trace produced over a lossy link model: the
    recorded receivers must be a subset of the model's expected receivers
    (the *delivered* subset), and any recorded ``intended_receivers`` must
    equal the expected receivers exactly.
    """
    if backend in ("vectorized", "batched"):
        # The batched executor produces traces bit-identical to the
        # vectorized kernel, so its validation path is the bitset one.
        return _validate_vectorized(topology, result, schedule, require_complete, lossy)
    if backend != "reference":
        raise ValueError(
            f"unknown validation backend {backend!r}; expected 'reference' or 'vectorized'"
        )
    violations: list[str] = []
    covered: set[int] = {result.source}
    delivered: dict[int, int] = {result.source: result.start_time - 1}
    previous_time = result.start_time - 1

    for index, advance in enumerate(result.advances):
        prefix = f"advance #{index} (t={advance.time})"
        if advance.time <= previous_time:
            violations.append(f"{prefix}: times not strictly increasing")
        previous_time = advance.time
        if advance.time < result.start_time or advance.time > result.end_time:
            violations.append(f"{prefix}: outside [start_time, end_time]")

        not_holding = advance.color - covered
        if not_holding:
            violations.append(
                f"{prefix}: transmitters without the message {sorted(not_holding)}"
            )
        if schedule is not None:
            asleep = [
                u for u in advance.color if not schedule.is_active(u, advance.time)
            ]
            if asleep:
                violations.append(f"{prefix}: sleeping transmitters {sorted(asleep)}")
        conflicts = conflicting_pairs(topology, advance.color, frozenset(covered))
        if conflicts:
            violations.append(f"{prefix}: conflicting transmitter pairs {conflicts}")

        expected = receivers_of(topology, advance.color, frozenset(covered))
        if lossy:
            if advance.intended_receivers is not None and (
                advance.intended_receivers != expected
            ):
                violations.append(
                    f"{prefix}: intended receivers "
                    f"{sorted(advance.intended_receivers)} differ from the "
                    f"model's {sorted(expected)}"
                )
            if not advance.receivers <= expected:
                extra = advance.receivers - expected
                violations.append(
                    f"{prefix}: delivered receivers include nodes the model "
                    f"could not reach {sorted(extra)}"
                )
        elif expected != advance.receivers:
            violations.append(
                f"{prefix}: recorded receivers {sorted(advance.receivers)} differ "
                f"from the model's {sorted(expected)}"
            )
        duplicates = advance.receivers & delivered.keys()
        if duplicates:
            violations.append(
                f"{prefix}: nodes received the message twice {sorted(duplicates)}"
            )
        for node in advance.receivers:
            delivered[node] = advance.time
        covered |= advance.receivers

    if frozenset(covered) != result.covered:
        violations.append(
            "result.covered does not match the coverage replayed from the trace"
        )
    if require_complete and frozenset(covered) != topology.node_set:
        missing = topology.node_set - covered
        violations.append(f"broadcast incomplete: {len(missing)} nodes never covered")
    if result.advances and result.end_time != result.advances[-1].time:
        violations.append(
            "end_time does not match the time of the last recorded advance"
        )
    return violations


def _validate_vectorized(
    topology: WSNTopology,
    result: BroadcastResult,
    schedule: WakeupSchedule | None,
    require_complete: bool,
    lossy: bool = False,
) -> list[str]:
    """Array-based twin of the reference validator (identical output).

    Unlike the engine (which must check advances one at a time, with the
    policy in the loop), post-hoc validation sees the whole trace at once,
    so every model constraint is evaluated for *all* advances in a handful
    of whole-trace array operations: membership matrices for colours and
    receivers, a cumulative-OR coverage prefix, and one matrix product for
    the hear counts.  The happy path — the only one that matters for speed —
    touches no per-advance Python loop; when any constraint fails, the
    reference validator re-runs to produce its exact violation messages.
    """
    from repro.sim.fast_engine import _window_for

    advances = result.advances
    if not advances:
        return validate_broadcast(
            topology,
            result,
            schedule=schedule,
            require_complete=require_complete,
            lossy=lossy,
        )
    view = bitset_view(topology)
    index = view._index  # noqa: SLF001 - sibling module of the same backend
    known = index.keys()
    if (
        result.source not in known
        or not result.covered <= known
        or any(
            not (
                advance.color <= known
                and advance.receivers <= known
                and advance.intended <= known
            )
            for advance in advances
        )
    ):
        # Traces referencing unknown nodes cannot be mapped onto the array
        # view; the reference validator reports them node by node.
        return validate_broadcast(
            topology,
            result,
            schedule=schedule,
            require_complete=require_complete,
            lossy=lossy,
        )

    def fail() -> list[str]:
        return validate_broadcast(
            topology,
            result,
            schedule=schedule,
            require_complete=require_complete,
            lossy=lossy,
        )

    num_advances = len(advances)
    num_nodes = view.num_nodes
    times = np.fromiter((a.time for a in advances), dtype=np.int64, count=num_advances)
    if np.any(np.diff(times, prepend=result.start_time - 1) <= 0):
        return fail()
    if times[0] < result.start_time or times[-1] != result.end_time:
        return fail()

    # Membership matrices: row i describes advance i.
    arange = np.arange(num_advances, dtype=np.int64)
    color_rows = np.repeat(arange, [len(a.color) for a in advances])
    recv_rows = np.repeat(arange, [len(a.receivers) for a in advances])
    lookup = view.id_lookup
    if lookup is not None:
        # Membership was verified above, so a plain flatten plus one table
        # gather suffices (no per-element dict lookups).
        color_cols = lookup[
            np.fromiter((u for a in advances for u in a.color), dtype=np.int64)
        ]
        recv_cols = lookup[
            np.fromiter((u for a in advances for u in a.receivers), dtype=np.int64)
        ]
    else:
        color_cols = np.fromiter(
            (index[u] for a in advances for u in a.color), dtype=np.int64
        )
        recv_cols = np.fromiter(
            (index[u] for a in advances for u in a.receivers), dtype=np.int64
        )
    color_mat = np.zeros((num_advances, num_nodes), dtype=np.float32)
    color_mat[color_rows, color_cols] = 1.0
    recv_mat = np.zeros((num_advances, num_nodes), dtype=bool)
    recv_mat[recv_rows, recv_cols] = True

    # Coverage before each advance: source plus the cumulative OR of the
    # recorded receivers of all earlier advances.
    covered_before = np.zeros((num_advances, num_nodes), dtype=bool)
    covered_before[0, index[result.source]] = True
    if num_advances > 1:
        np.logical_or.accumulate(recv_mat[:-1], axis=0, out=covered_before[1:, :])
        covered_before[1:, :] |= covered_before[0]

    # 1. Every transmitter already held the message (gather, not a full
    # matrix product: the transmitter count is tiny next to A x n).
    if not covered_before[color_rows, color_cols].all():
        return fail()
    # 2. (duty-cycle) every transmitter was awake in its slot.
    if schedule is not None:
        window = _window_for(schedule, view)
        if not window.active_pairs(color_cols, times[color_rows]).all():
            return fail()
    # 3+4. Hear counts give both the conflict test (an uncovered node hearing
    # >= 2 transmitters is a common uncovered neighbour of some pair) and the
    # expected receivers (uncovered nodes hearing >= 1).  float32 matmul hits
    # BLAS and is exact for counts far beyond any node degree.
    hear = color_mat @ view.adjacency_f32
    uncovered_before = ~covered_before
    if np.any((hear >= 2.0) & uncovered_before):
        return fail()
    expected_mat = (hear >= 1.0) & uncovered_before
    if lossy:
        # Delivered receivers must be a subset of the expected ones, and any
        # recorded intent must match the model exactly.  Advances without a
        # recorded intent (reliable advances inside a lossy validation) fall
        # back to their receivers, for which equality is the subset check.
        if np.any(recv_mat & ~expected_mat):
            return fail()
        intended_rows = np.repeat(arange, [len(a.intended) for a in advances])
        if lookup is not None:
            intended_cols = lookup[
                np.fromiter((u for a in advances for u in a.intended), dtype=np.int64)
            ]
        else:
            intended_cols = np.fromiter(
                (index[u] for a in advances for u in a.intended), dtype=np.int64
            )
        intended_mat = np.zeros((num_advances, num_nodes), dtype=bool)
        intended_mat[intended_rows, intended_cols] = True
        has_intent = np.fromiter(
            (a.intended_receivers is not None for a in advances),
            dtype=bool,
            count=num_advances,
        )
        if not np.array_equal(
            intended_mat[has_intent], expected_mat[has_intent]
        ):
            return fail()
    elif not np.array_equal(expected_mat, recv_mat):
        return fail()
    # 5. No duplicate delivery is implied by check 4: recorded receivers
    # equal (or, lossy, are a subset of) the expected ones, which are
    # restricted to ~covered_before (the complement of source + everything
    # delivered earlier), so a duplicate necessarily fails the check above
    # and takes the fail() path.

    covered_final = covered_before[-1] | recv_mat[-1]
    if result.covered == topology.node_set:
        if not covered_final.all():
            return fail()
    elif not np.array_equal(covered_final, view.bool_from_nodes(result.covered)):
        return fail()
    if require_complete and not covered_final.all():
        return fail()
    return []


def validate_multi_broadcast(
    topology: WSNTopology,
    result: MultiBroadcastResult,
    *,
    schedule: WakeupSchedule | None = None,
    require_complete: bool = True,
    backend: str = "reference",
    lossy: bool = False,
) -> list[str]:
    """Validate a multi-source trace (empty list when valid).

    Two layers of checks:

    1. **Per-message validity** — every message's :class:`BroadcastResult`
       must be a valid single-source trace on its own (same checks as
       :func:`validate_broadcast`, on the requested ``backend``): the
       contention kernel defers advances but never bends the paper's
       network model for an individual wavefront.
    2. **Cross-message contention rules** — for every round/slot shared by
       two messages: no node serves two messages at once (transmitter or
       intended receiver), and no intended receiver of one message is in
       range of another message's transmitter (the collision would destroy
       the delivery).  These are evaluated on the *intended* receivers, so
       they hold for lossy traces too.
    """
    violations: list[str] = []
    seen_sources: set[int] = set()
    for index, message in enumerate(result.messages):
        if message.source != result.sources[index]:
            violations.append(
                f"message {index}: trace source {message.source} does not match "
                f"result.sources[{index}] = {result.sources[index]}"
            )
        if message.source in seen_sources:
            violations.append(f"message {index}: duplicate source {message.source}")
        seen_sources.add(message.source)
        if message.start_time != result.start_time:
            violations.append(
                f"message {index}: start_time {message.start_time} differs from "
                f"the shared timeline start {result.start_time}"
            )
        for violation in validate_broadcast(
            topology,
            message,
            schedule=schedule,
            require_complete=require_complete,
            backend=backend,
            lossy=lossy,
        ):
            violations.append(f"message {index} (source {message.source}): {violation}")

    # Cross-message checks per shared round/slot, on the intended receivers.
    by_time: dict[int, list[tuple[int, frozenset[int], frozenset[int]]]] = defaultdict(list)
    for index, message in enumerate(result.messages):
        for advance in message.advances:
            by_time[advance.time].append((index, advance.color, advance.intended))
    for time in sorted(by_time):
        entries = by_time[time]
        if len(entries) < 2:
            continue
        for (i, color_i, recv_i), (j, color_j, recv_j) in combinations(entries, 2):
            overlap = (color_i | recv_i) & (color_j | recv_j)
            if overlap:
                violations.append(
                    f"t={time}: nodes {sorted(overlap)} serve messages {i} and "
                    f"{j} simultaneously"
                )
            mask_i = topology.mask_from_nodes(color_i)
            mask_j = topology.mask_from_nodes(color_j)
            jammed = {
                r for r in recv_i if topology.neighbor_mask(r) & mask_j
            } | {
                r for r in recv_j if topology.neighbor_mask(r) & mask_i
            }
            if jammed:
                violations.append(
                    f"t={time}: receivers {sorted(jammed)} of messages {i}/{j} "
                    "are in range of the other message's transmitters "
                    "(cross-message collision)"
                )
    return violations


def assert_valid_multi(
    topology: WSNTopology,
    result: MultiBroadcastResult,
    *,
    schedule: WakeupSchedule | None = None,
    require_complete: bool = True,
    backend: str = "reference",
    lossy: bool = False,
) -> None:
    """Raise :class:`ScheduleViolation` when a multi-source trace is invalid."""
    violations = validate_multi_broadcast(
        topology,
        result,
        schedule=schedule,
        require_complete=require_complete,
        backend=backend,
        lossy=lossy,
    )
    if violations:
        details = "\n  - ".join(violations)
        raise ScheduleViolation(
            f"multi-source broadcast trace ({result.num_messages} messages) "
            f"violates the network model:\n  - {details}"
        )


def assert_valid(
    topology: WSNTopology,
    result: BroadcastResult,
    *,
    schedule: WakeupSchedule | None = None,
    require_complete: bool = True,
    backend: str = "reference",
    lossy: bool = False,
) -> None:
    """Raise :class:`ScheduleViolation` when the trace violates the model."""
    violations = validate_broadcast(
        topology,
        result,
        schedule=schedule,
        require_complete=require_complete,
        backend=backend,
        lossy=lossy,
    )
    if violations:
        details = "\n  - ".join(violations)
        raise ScheduleViolation(
            f"broadcast trace from policy {result.policy_name!r} violates the "
            f"network model:\n  - {details}"
        )
