"""Independent validation of broadcast traces.

The engines already reject invalid advances while simulating; this module
re-checks a finished :class:`~repro.sim.trace.BroadcastResult` *from scratch*
(replaying coverage from the source) so that tests, property-based checks and
the experiment harness can assert the network-model invariants without
trusting the engine's internal bookkeeping.  The checks are exactly the
paper's model constraints:

1.  every transmitter held the message before transmitting;
2.  (duty-cycle) every transmitter was awake in its transmission slot;
3.  transmitters of the same round/slot are mutually interference-free with
    respect to the nodes that still needed the message;
4.  the recorded receivers are exactly the uncovered neighbours of the
    transmitters;
5.  coverage is complete at the end and every node received the message
    exactly once (no duplicate delivery in the trace);
6.  times are within ``[start_time, end_time]`` and strictly increasing.
"""

from __future__ import annotations

from repro.dutycycle.schedule import WakeupSchedule
from repro.network.interference import conflicting_pairs, receivers_of
from repro.network.topology import WSNTopology
from repro.sim.trace import BroadcastResult

__all__ = ["ScheduleViolation", "validate_broadcast", "assert_valid"]


class ScheduleViolation(AssertionError):
    """A broadcast trace violates the paper's network model."""


def validate_broadcast(
    topology: WSNTopology,
    result: BroadcastResult,
    *,
    schedule: WakeupSchedule | None = None,
    require_complete: bool = True,
) -> list[str]:
    """Return a list of violation descriptions (empty when the trace is valid)."""
    violations: list[str] = []
    covered: set[int] = {result.source}
    delivered: dict[int, int] = {result.source: result.start_time - 1}
    previous_time = result.start_time - 1

    for index, advance in enumerate(result.advances):
        prefix = f"advance #{index} (t={advance.time})"
        if advance.time <= previous_time:
            violations.append(f"{prefix}: times not strictly increasing")
        previous_time = advance.time
        if advance.time < result.start_time or advance.time > result.end_time:
            violations.append(f"{prefix}: outside [start_time, end_time]")

        not_holding = advance.color - covered
        if not_holding:
            violations.append(
                f"{prefix}: transmitters without the message {sorted(not_holding)}"
            )
        if schedule is not None:
            asleep = [
                u for u in advance.color if not schedule.is_active(u, advance.time)
            ]
            if asleep:
                violations.append(f"{prefix}: sleeping transmitters {sorted(asleep)}")
        conflicts = conflicting_pairs(topology, advance.color, frozenset(covered))
        if conflicts:
            violations.append(f"{prefix}: conflicting transmitter pairs {conflicts}")

        expected = receivers_of(topology, advance.color, frozenset(covered))
        if expected != advance.receivers:
            violations.append(
                f"{prefix}: recorded receivers {sorted(advance.receivers)} differ "
                f"from the model's {sorted(expected)}"
            )
        duplicates = advance.receivers & delivered.keys()
        if duplicates:
            violations.append(
                f"{prefix}: nodes received the message twice {sorted(duplicates)}"
            )
        for node in advance.receivers:
            delivered[node] = advance.time
        covered |= advance.receivers

    if frozenset(covered) != result.covered:
        violations.append(
            "result.covered does not match the coverage replayed from the trace"
        )
    if require_complete and frozenset(covered) != topology.node_set:
        missing = topology.node_set - covered
        violations.append(f"broadcast incomplete: {len(missing)} nodes never covered")
    if result.advances and result.end_time != result.advances[-1].time:
        violations.append(
            "end_time does not match the time of the last recorded advance"
        )
    return violations


def assert_valid(
    topology: WSNTopology,
    result: BroadcastResult,
    *,
    schedule: WakeupSchedule | None = None,
    require_complete: bool = True,
) -> None:
    """Raise :class:`ScheduleViolation` when the trace violates the model."""
    violations = validate_broadcast(
        topology, result, schedule=schedule, require_complete=require_complete
    )
    if violations:
        details = "\n  - ".join(violations)
        raise ScheduleViolation(
            f"broadcast trace from policy {result.policy_name!r} violates the "
            f"network model:\n  - {details}"
        )
