"""Replay a recorded broadcast trace through any engine.

:class:`ReplayPolicy` answers ``select_advance`` from a recorded
:class:`~repro.sim.trace.BroadcastResult` instead of computing a schedule.
Driving a replay through an engine re-validates every advance against the
network model, which makes it useful for

* auditing externally produced traces (the engine raises on any violation),
* regression-testing engine backends against each other with *zero* policy
  cost (the backend microbenchmark in ``benchmarks/test_engine_backends.py``
  uses it to time the engines' own machinery in isolation), and
* re-rendering or re-measuring a stored schedule without re-running the
  scheduler that produced it.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from repro.core.advance import Advance, BroadcastState, LaneStateView
from repro.core.policies import SchedulingPolicy
from repro.sim.trace import BroadcastResult

__all__ = ["ReplayPolicy"]


class ReplayPolicy(SchedulingPolicy):
    """Replays the advances of a recorded trace at their recorded times."""

    def __init__(self, trace: BroadcastResult) -> None:
        self.name = trace.policy_name
        self.trace = trace
        self._by_time: dict[int, Advance] = {a.time: a for a in trace.advances}
        if len(self._by_time) != len(trace.advances):
            raise ValueError("trace contains two advances at the same time")
        self._times = sorted(self._by_time)
        # A recorded advance with no receivers may sit at a slot with no
        # awake frontier node, which the idle-slot skip would jump over;
        # such traces must be replayed slot by slot.
        self.frontier_driven = all(a.receivers for a in trace.advances)

    def select_advance(self, state: BroadcastState) -> Advance | None:
        return self._by_time.get(state.time)

    def select_advance_batch(
        self, views: Sequence[LaneStateView]
    ) -> list[Advance | None]:
        """Batched replay: one dict lookup per lane, no state inspection."""
        return [view.policy._by_time.get(view.time) for view in views]

    def next_decision_slot(self, time: int) -> int | None:
        """The next recorded transmission slot (the replay acts at no other)."""
        index = bisect_left(self._times, time)
        if index == len(self._times):
            # Past the recorded trace: no further transmissions ever happen,
            # which the engine discovers by timing out, as the reference
            # engine would.
            return None if not self._times else self._times[-1] + 1_000_000_000
        return self._times[index]
