"""Per-broadcast energy accounting (the paper's §VII "energy saving" direction).

The paper's duty-cycle model exists to save energy, and its conclusion lists
energy-aware optimisation as future work.  This module attaches a simple but
standard first-order radio energy model to a finished broadcast trace so the
schedulers can also be compared on the energy they burn, not only on latency:

* every transmission costs ``tx_cost``;
* every node inside a transmitter's range pays ``rx_cost`` for receiving (or
  overhearing) that transmission — the receiving channel is always on in the
  paper's model, so overhearing cannot be avoided;
* every node pays ``idle_cost`` per round/slot of the broadcast window when
  it is not receiving (idle listening), and ``sleep_cost`` is kept for
  completeness of the interface (the paper's nodes never switch the
  receiving channel off, so it defaults to the idle cost).

The absolute unit is irrelevant for comparisons; the defaults follow the
usual CC1000/CC2420-class ratios (tx ≈ rx ≈ 20× idle listening).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.topology import WSNTopology
from repro.sim.trace import BroadcastResult, MultiBroadcastResult
from repro.utils.validation import check_non_negative

__all__ = ["EnergyModel", "EnergyReport", "energy_of_broadcast"]


@dataclass(frozen=True)
class EnergyModel:
    """First-order radio energy model (arbitrary units per round/slot)."""

    tx_cost: float = 20.0
    rx_cost: float = 15.0
    idle_cost: float = 1.0
    sleep_cost: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative("tx_cost", self.tx_cost)
        check_non_negative("rx_cost", self.rx_cost)
        check_non_negative("idle_cost", self.idle_cost)
        check_non_negative("sleep_cost", self.sleep_cost)


@dataclass
class EnergyReport:
    """Energy spent by one broadcast, total and per node."""

    model: EnergyModel
    transmissions: int
    receptions: int
    idle_slots: int
    per_node: dict[int, float] = field(default_factory=dict)

    @property
    def transmission_energy(self) -> float:
        """Energy spent on transmitting."""
        return self.transmissions * self.model.tx_cost

    @property
    def reception_energy(self) -> float:
        """Energy spent on receiving and overhearing."""
        return self.receptions * self.model.rx_cost

    @property
    def idle_energy(self) -> float:
        """Energy spent idle-listening during the broadcast window."""
        return self.idle_slots * self.model.idle_cost

    @property
    def total(self) -> float:
        """Total energy of the broadcast."""
        return self.transmission_energy + self.reception_energy + self.idle_energy

    def energy_per_node(self) -> float:
        """Mean energy per node (0.0 for an empty network)."""
        if not self.per_node:
            return 0.0
        return sum(self.per_node.values()) / len(self.per_node)

    def hottest_node(self) -> tuple[int, float]:
        """The node spending the most energy (relevant for lifetime)."""
        node = max(self.per_node, key=lambda u: self.per_node[u])
        return node, self.per_node[node]


def energy_of_broadcast(
    topology: WSNTopology,
    result: BroadcastResult | MultiBroadcastResult,
    model: EnergyModel | None = None,
) -> EnergyReport:
    """Account the energy of ``result`` on ``topology`` under ``model``.

    Receptions include overhearing: every neighbour of a transmitter is
    charged one reception for that advance, whether or not it was still
    waiting for the message (the paper's receiving channel is always on).
    Idle listening is charged per node per round/slot of the broadcast
    window in which the node did not receive anything.

    A :class:`~repro.sim.trace.MultiBroadcastResult` is accounted over its
    merged advance stream with the *makespan* as the broadcast window, so
    ``k`` concurrent messages share one window instead of paying ``k``
    idle-listening windows — the whole point of batching wavefronts.
    """
    model = model or EnergyModel()
    per_node = {u: 0.0 for u in topology.node_ids}
    transmissions = 0
    receptions = 0
    listening_events: dict[int, int] = {u: 0 for u in topology.node_ids}

    for advance in result.advances:
        for transmitter in advance.color:
            transmissions += 1
            per_node[transmitter] += model.tx_cost
            for neighbor in topology.neighbors(transmitter):
                receptions += 1
                per_node[neighbor] += model.rx_cost
                listening_events[neighbor] += 1

    window = max(result.latency, 0)
    idle_slots = 0
    for node in topology.node_ids:
        idle = max(window - listening_events[node], 0)
        idle_slots += idle
        per_node[node] += idle * model.idle_cost

    return EnergyReport(
        model=model,
        transmissions=transmissions,
        receptions=receptions,
        idle_slots=idle_slots,
        per_node=per_node,
    )
