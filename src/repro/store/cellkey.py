"""Content-addressed cell keys: the cache-key contract of the store.

A sweep grid is embarrassingly parallel across ``(node count, repetition)``
cells, and the determinism contract (see :mod:`repro.experiments.runner`)
makes every cell's records a pure function of its configuration — never of
the engine backend, the worker count, or the rest of the grid.  A
:class:`CellKey` captures exactly that function's input:

* the cell coordinates (``system``, ``rate``, ``num_nodes``,
  ``repetition``),
* the policy line-up *names* (the behaviour of the default line-up is
  pinned by the config fields below — ``search``, ``max_color_classes`` —
  so names identify it; custom factories must use distinct names),
* every record-affecting config field
  (:meth:`repro.experiments.config.SweepConfig.cell_key_fields` — scenario,
  duty model, link model, loss probability, sources, solver tier,
  geometry, base seed, search configuration), and
* :data:`STORE_SCHEMA_VERSION`, bumped whenever the record schema or the
  simulation semantics change incompatibly, so stale caches can never be
  returned as fresh results.

The digest is the SHA-256 of the canonical-JSON rendering of those parts —
stable across processes, platforms and Python versions — and doubles as the
shard filename, making the store content-addressed: identical configs in
different processes converge on the same digest, different configs (even by
one loss probability) never collide.

Excluded on purpose: ``engine``, ``workers`` (bit-identical records by
contract — a cell cached from a vectorized 8-worker run satisfies a
reference serial run), and the grid shape ``node_counts`` / ``repetitions``
(the cell's own coordinates replace them, so growing a grid only pays for
the new cells).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.utils.serialization import canonical_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.experiments.config import SweepConfig

__all__ = ["STORE_SCHEMA_VERSION", "CellKey", "cell_key_for"]

#: Version of the store's record schema and cache-key contract.  Part of
#: every digest: bumping it invalidates every previously cached cell.
#: History: 1 — initial store; 2 — ``SweepConfig.solver`` joined the
#: record-affecting fields (the solver tier is workload configuration, so
#: pre-solver caches must not satisfy solver-aware lookups).
STORE_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class CellKey:
    """The full content identity of one sweep cell.

    ``params`` is the canonical-JSON rendering of the record-affecting
    config fields (kept as a string so the key is hashable and its digest
    reproducible); ``policies`` the policy names of the line-up in
    definition order.
    """

    system: str
    rate: int
    num_nodes: int
    repetition: int
    policies: tuple[str, ...]
    params: str
    schema_version: int = STORE_SCHEMA_VERSION

    @property
    def digest(self) -> str:
        """SHA-256 content digest (64 hex chars); the shard address."""
        payload = canonical_json(
            {
                "schema_version": self.schema_version,
                "system": self.system,
                "rate": self.rate,
                "num_nodes": self.num_nodes,
                "repetition": self.repetition,
                "policies": list(self.policies),
                "params": self.params,
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cell_key_for(
    config: "SweepConfig",
    *,
    system: str,
    rate: int,
    num_nodes: int,
    repetition: int,
    policies: Iterable[str],
    schema_version: int = STORE_SCHEMA_VERSION,
) -> CellKey:
    """Build the :class:`CellKey` of one cell of ``config``'s grid.

    ``rate`` must already be the cell's effective rate (``1`` for the
    round-based system), matching the ``rate`` column of its records.
    """
    return CellKey(
        system=system,
        rate=rate,
        num_nodes=num_nodes,
        repetition=repetition,
        policies=tuple(policies),
        params=canonical_json(config.cell_key_fields()),
        schema_version=schema_version,
    )
