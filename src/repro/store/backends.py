"""Pluggable record-shard formats, mirroring ``ENGINE_BACKENDS``.

A :class:`StoreBackend` turns a batch of
:class:`~repro.experiments.runner.RunRecord` objects into shard text and
back, *losslessly*: ``loads(dumps(records)) == records`` bit-for-bit,
including every float (JSON and ``repr`` both round-trip IEEE-754 doubles
exactly).  The store owns layout and atomicity; the backend owns only the
bytes inside one shard, so a new format (parquet, msgpack, ...) plugs in
here and is immediately selectable everywhere — ``ExperimentStore``,
``store export``, the benchmarks — exactly like a new engine backend in
:data:`repro.sim.broadcast.ENGINE_BACKENDS`.

``"jsonl"`` (the default) writes one canonical-JSON object per record —
self-describing, append-friendly, greppable.  ``"csv"`` writes the same
columns as ``SweepResult.to_rows`` exports but value-exact (no display
rounding), which is what ``store export --format csv`` emits.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import TYPE_CHECKING, Sequence

from repro.utils.serialization import canonical_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.experiments.runner import RunRecord

__all__ = [
    "StoreBackend",
    "JsonlBackend",
    "CsvBackend",
    "STORE_BACKENDS",
    "store_backend_names",
    "get_store_backend",
]

#: Scalar coercions for the CSV backend, keyed by the record field
#: annotation (the dataclass stores them as strings under
#: ``from __future__ import annotations``).
_FIELD_COERCIONS = {"int": int, "float": float, "str": str}


def _record_type() -> type:
    # Imported lazily: repro.experiments.runner imports this package for the
    # store integration, so a module-level import here would be circular.
    from repro.experiments.runner import RunRecord

    return RunRecord


def _record_fields() -> tuple[dataclasses.Field, ...]:
    return dataclasses.fields(_record_type())


class StoreBackend:
    """One shard format: lossless records <-> text.

    Subclasses set ``name`` (the registry key and CLI value) and
    ``extension`` (the shard filename suffix) and implement
    :meth:`dumps` / :meth:`loads`.
    """

    name: str
    extension: str

    def dumps(self, records: Sequence["RunRecord"]) -> str:
        """Serialise ``records`` to shard text."""
        raise NotImplementedError

    def loads(self, text: str) -> list["RunRecord"]:
        """Parse shard text back into records (inverse of :meth:`dumps`)."""
        raise NotImplementedError


class JsonlBackend(StoreBackend):
    """One canonical-JSON object per line, one line per record."""

    name = "jsonl"
    extension = ".jsonl"

    def dumps(self, records: Sequence["RunRecord"]) -> str:
        lines = [canonical_json(dataclasses.asdict(record)) for record in records]
        return "\n".join(lines) + ("\n" if lines else "")

    def loads(self, text: str) -> list["RunRecord"]:
        record_cls = _record_type()
        return [
            record_cls(**json.loads(line))
            for line in text.splitlines()
            if line.strip()
        ]


class CsvBackend(StoreBackend):
    """Header row + one value-exact CSV row per record.

    Unlike ``SweepResult.to_rows`` (which rounds floats for display), every
    float is written with full ``repr`` precision so the round trip is
    bit-identical.
    """

    name = "csv"
    extension = ".csv"

    def dumps(self, records: Sequence["RunRecord"]) -> str:
        fields = _record_fields()
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow([field.name for field in fields])
        for record in records:
            writer.writerow(
                [
                    repr(value) if isinstance(value, float) else value
                    for value in (getattr(record, field.name) for field in fields)
                ]
            )
        return buffer.getvalue()

    def loads(self, text: str) -> list["RunRecord"]:
        record_cls = _record_type()
        coercions = {
            field.name: _FIELD_COERCIONS[str(field.type)]
            for field in _record_fields()
        }
        reader = csv.reader(io.StringIO(text))
        try:
            header = next(reader)
        except StopIteration:
            return []
        records = []
        for row in reader:
            if not row:
                continue
            records.append(
                record_cls(
                    **{name: coercions[name](raw) for name, raw in zip(header, row)}
                )
            )
        return records


#: The single registry of shard backends (``name -> backend instance``);
#: every store consumer resolves formats through it.
STORE_BACKENDS: dict[str, StoreBackend] = {
    backend.name: backend for backend in (JsonlBackend(), CsvBackend())
}


def store_backend_names() -> list[str]:
    """Registered shard-format names, sorted (CLI choices)."""
    return sorted(STORE_BACKENDS)


def get_store_backend(name: str) -> StoreBackend:
    """Resolve a backend by name with the registry's error message."""
    try:
        return STORE_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown store backend {name!r}; expected one of "
            f"{store_backend_names()}"
        ) from None
