"""The query layer: cached cells back into figure-ready ``SweepResult``\\ s.

``store.query(...)`` answers "give me the records matching these workload
axes" straight from the index — no simulation — in a shape the figure and
report code already consumes.  Cell-level filters (``system``,
``scenario``, ``num_nodes``, ``loss_probability``, ``n_sources``, ...) are
pushed down to SQL over the index columns; the record-level ``policy``
filter is applied after the shards load (policies live inside cells).

Records come back in the store's canonical cell order, which coincides
with ``run_sweep``'s serial order for a single sweep's cells (ascending
node count, then repetition) — so a query over exactly one sweep's grid
reproduces that sweep's record order bit-for-bit.  The attached
``SweepConfig`` is reconstructed from the matched cells' stored key
parameters; since those parameters are part of every digest, the
reconstruction is faithful for any single-config query, and a query
spanning several configs (e.g. two scenarios at once) keeps the records
but refuses only if the *system models* disagree, where a single
``SweepResult`` would be meaningless.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.store.store import ExperimentStore

__all__ = ["query_records"]


def _config_from_params(
    params: dict, node_counts: tuple[int, ...], repetitions: int
):
    """Rebuild a ``SweepConfig`` from one cell's stored key parameters.

    The key parameters are exactly ``SweepConfig.cell_key_fields()``; the
    excluded grid shape is resupplied from the matched cells and the
    excluded ``engine``/``workers`` fall back to their (record-irrelevant)
    defaults.
    """
    from repro.core.time_counter import SearchConfig
    from repro.experiments.config import SweepConfig

    fields = dict(params)
    fields["search"] = SearchConfig(**fields["search"])
    fields["duty_rates"] = tuple(fields["duty_rates"])
    return SweepConfig(
        node_counts=node_counts, repetitions=repetitions, **fields
    )


def query_records(
    store: "ExperimentStore", *, policy: str | None = None, **filters: object
):
    """Run one query against ``store`` and assemble a ``SweepResult``.

    ``filters`` are exact-match constraints on the index columns
    (``system=``, ``rate=``, ``scenario=``, ``duty_model=``,
    ``link_model=``, ``loss_probability=``, ``n_sources=``,
    ``source_placement=``, ``num_nodes=``, ``repetition=``, ``seed=``,
    ``schema_version=``); ``policy`` restricts the records inside each
    matched cell.  Raises :class:`LookupError` when nothing matches (a
    typo'd filter should fail loudly, not plot an empty figure) and
    :class:`ValueError` when the matches span both system models.
    """
    from repro.experiments.runner import SweepResult

    cells = store._matching_cells(dict(filters))
    if not cells:
        rendered = ", ".join(f"{k}={v!r}" for k, v in filters.items()) or "<all>"
        raise LookupError(f"no cached cells match the query ({rendered})")

    systems = sorted({row["system"] for row, _ in cells})
    rates = sorted({row["rate"] for row, _ in cells})
    if len(systems) > 1:
        raise ValueError(
            f"query matches both system models {systems}; add a system= filter"
        )

    records = []
    for _, cell_records in cells:
        records.extend(
            r for r in cell_records if policy is None or r.policy == policy
        )
    if policy is not None and not records:
        known = sorted({r.policy for _, batch in cells for r in batch})
        raise LookupError(
            f"no records of policy {policy!r} in the matched cells; "
            f"cached policies: {known}"
        )

    node_counts = tuple(sorted({row["num_nodes"] for row, _ in cells}))
    repetitions = 1 + max(row["repetition"] for row, _ in cells)
    config = _config_from_params(
        json.loads(cells[0][0]["params"]), node_counts, repetitions
    )
    return SweepResult(
        system=systems[0],
        rate=rates[0] if len(rates) == 1 else max(rates),
        config=config,
        records=records,
    )
