"""Persistent experiment store: content-addressed cell cache + query layer.

The determinism contract of :mod:`repro.experiments.runner` makes every
sweep cell's records a pure function of its configuration — which makes
cells perfectly cacheable by content hash.  This package persists them:

* :mod:`repro.store.cellkey` — :class:`CellKey`, the cache-key contract
  (what is hashed, what is deliberately excluded, and the schema version
  that fences off stale caches);
* :mod:`repro.store.backends` — pluggable shard formats
  (:data:`STORE_BACKENDS`, mirroring ``ENGINE_BACKENDS``);
* :mod:`repro.store.store` — :class:`ExperimentStore`, the sqlite-indexed,
  atomically-sharded cell cache with ``stats`` / ``gc`` / ``export``;
* :mod:`repro.store.query` — cached records back out as figure-ready
  ``SweepResult``\\ s.

``run_sweep(..., store=..., resume=True)`` consults the store before
dispatching cells, so interrupted sweeps resume and grid extensions only
pay for the delta; see ``docs/store.md`` for the full contract.
"""

from repro.store.backends import (
    STORE_BACKENDS,
    CsvBackend,
    JsonlBackend,
    StoreBackend,
    get_store_backend,
    store_backend_names,
)
from repro.store.cellkey import STORE_SCHEMA_VERSION, CellKey, cell_key_for
from repro.store.query import query_records
from repro.store.store import ExperimentStore, GcStats, StoreStats, open_store

__all__ = [
    "CellKey",
    "CsvBackend",
    "ExperimentStore",
    "GcStats",
    "JsonlBackend",
    "STORE_BACKENDS",
    "STORE_SCHEMA_VERSION",
    "StoreBackend",
    "StoreStats",
    "cell_key_for",
    "get_store_backend",
    "open_store",
    "query_records",
    "store_backend_names",
]
