"""The persistent experiment store: sqlite index + content-addressed shards.

Layout (everything under one root directory)::

    <root>/
        index.sqlite            # one row per cached cell (the queryable index)
        shards/<dd>/<digest>.jsonl   # one shard per cell, content-addressed

The index row carries the cell's coordinates and workload axes as real
columns (queryable with SQL), the full canonical-JSON key parameters, and
the shard's relative path + backend; the shard holds the cell's
:class:`~repro.experiments.runner.RunRecord` batch in a
:class:`~repro.store.backends.StoreBackend` format.  Writes are atomic and
crash-safe: the shard is written with temp-file + ``os.replace`` *before*
its index row is committed, so a reader either sees a complete cell or no
cell — never a torn one.  Within one process the store is thread-safe: a
single sqlite connection guarded by an :class:`threading.RLock` serialises
index access, which is what lets the fabric coordinator commit results from
its server's executor threads while ``status`` reads run concurrently.
Across processes, sqlite's file locking (with a generous busy timeout)
arbitrates — concurrent committers of the *same* digest are idempotent by
construction, since the digest addresses the content.

``get``/``put`` are the cache interface the sweep runner uses;
:meth:`ExperimentStore.stats`, :meth:`ExperimentStore.gc`,
:meth:`ExperimentStore.export` and :meth:`ExperimentStore.query` are the
operator surface behind ``repro store stats|gc|export`` and the figure /
report query layer.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.obs import events as _events
from repro.obs.bus import EVENT_BUS
from repro.store.backends import StoreBackend, get_store_backend
from repro.store.cellkey import STORE_SCHEMA_VERSION, CellKey
from repro.utils.serialization import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.experiments.runner import RunRecord, SweepResult

__all__ = ["ExperimentStore", "StoreStats", "GcStats", "open_store"]

_INDEX_NAME = "index.sqlite"
_SHARDS_DIR = "shards"

#: How old an in-flight temp file must be before ``gc`` treats it as a
#: crash leftover rather than a concurrent sweep's live atomic write.
_TEMP_FILE_MAX_AGE_S = 3600.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS cells (
    digest TEXT PRIMARY KEY,
    schema_version INTEGER NOT NULL,
    system TEXT NOT NULL,
    rate INTEGER NOT NULL,
    num_nodes INTEGER NOT NULL,
    repetition INTEGER NOT NULL,
    scenario TEXT NOT NULL,
    duty_model TEXT NOT NULL,
    link_model TEXT NOT NULL,
    loss_probability REAL NOT NULL,
    n_sources INTEGER NOT NULL,
    source_placement TEXT NOT NULL,
    seed INTEGER NOT NULL,
    policies TEXT NOT NULL,
    params TEXT NOT NULL,
    backend TEXT NOT NULL,
    shard TEXT NOT NULL,
    num_records INTEGER NOT NULL,
    created_at TEXT NOT NULL
)
"""

#: The canonical cell order of every multi-cell read (query / export):
#: workload axes first, then the grid coordinates, digest as tiebreaker.
_CANONICAL_ORDER = (
    "ORDER BY system, rate, scenario, duty_model, link_model, "
    "loss_probability, n_sources, source_placement, num_nodes, repetition, "
    "digest"
)

#: Index columns that :meth:`ExperimentStore.query` accepts as filters.
_QUERYABLE_COLUMNS = (
    "system",
    "rate",
    "num_nodes",
    "repetition",
    "scenario",
    "duty_model",
    "link_model",
    "loss_probability",
    "n_sources",
    "source_placement",
    "seed",
    "schema_version",
)


@dataclass(frozen=True)
class StoreStats:
    """Aggregate shape of a store (the ``store stats`` target)."""

    cells: int
    records: int
    shard_bytes: int
    systems: dict[str, int] = field(default_factory=dict)
    scenarios: dict[str, int] = field(default_factory=dict)
    link_models: dict[str, int] = field(default_factory=dict)
    schema_versions: dict[int, int] = field(default_factory=dict)


@dataclass(frozen=True)
class GcStats:
    """What one :meth:`ExperimentStore.gc` pass removed."""

    dangling_rows: int
    orphan_shards: int
    stale_schema_cells: int
    temp_files: int
    #: Dot-prefixed temp files *younger* than the reap age: a concurrent
    #: writer's live atomic write.  Reported, never deleted, and excluded
    #: from :attr:`total` — gc only counts what it removed.
    in_flight_temp_files: int = 0

    @property
    def total(self) -> int:
        """Total number of removed items."""
        return (
            self.dangling_rows
            + self.orphan_shards
            + self.stale_schema_cells
            + self.temp_files
        )


class ExperimentStore:
    """A persistent, content-addressed cache of sweep cells.

    Parameters
    ----------
    root:
        Store directory (created if missing).
    backend:
        Shard format for *new* cells, by registry name or instance
        (``"jsonl"`` by default).  Reads always honour the backend recorded
        in each cell's index row, so stores with mixed shard formats stay
        readable.
    """

    def __init__(self, root: Path | str, *, backend: str | StoreBackend = "jsonl") -> None:
        self.root = Path(root)
        self.backend = (
            get_store_backend(backend) if isinstance(backend, str) else backend
        )
        self.root.mkdir(parents=True, exist_ok=True)
        # One connection shared across threads, serialised by ``_lock``:
        # the fabric coordinator commits from its HTTP server's executor
        # threads while status/query reads come from the serve loop.
        self._connection = sqlite3.connect(
            self.root / _INDEX_NAME, timeout=30.0, check_same_thread=False
        )
        self._lock = threading.RLock()
        with self._lock:
            self._connection.execute(_SCHEMA)
            self._connection.commit()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the index connection (the store can be re-opened any time)."""
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExperimentStore({str(self.root)!r}, backend={self.backend.name!r})"

    # -- the cache interface ----------------------------------------------

    def contains(self, key: CellKey) -> bool:
        """Whether a complete cell for ``key`` is cached.

        Index lookup + shard existence only — no shard read, so probing
        membership of a large cell costs no record deserialisation.
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT shard FROM cells WHERE digest = ?", (key.digest,)
            ).fetchone()
        return row is not None and (self.root / row[0]).is_file()

    def get(self, key: CellKey) -> "list[RunRecord] | None":
        """The cached records of ``key``'s cell, or ``None`` on a miss.

        A row whose shard file has vanished (manual deletion, partial copy)
        is treated as a miss and its index entry dropped, so the cell is
        simply re-simulated instead of failing the sweep.
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT shard, backend FROM cells WHERE digest = ?", (key.digest,)
            ).fetchone()
        if row is None:
            if EVENT_BUS.active:
                EVENT_BUS.emit(_events.StoreMiss(key.digest))
            return None
        shard_path = self.root / row[0]
        try:
            text = shard_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            with self._lock:
                self._connection.execute(
                    "DELETE FROM cells WHERE digest = ?", (key.digest,)
                )
                self._connection.commit()
            if EVENT_BUS.active:
                EVENT_BUS.emit(_events.StoreMiss(key.digest))
            return None
        records = get_store_backend(row[1]).loads(text)
        if EVENT_BUS.active:
            EVENT_BUS.emit(_events.StoreHit(key.digest, len(records)))
        return records

    def put(self, key: CellKey, records: "Sequence[RunRecord]") -> str:
        """Persist one cell's record batch; returns the content digest.

        Shard first (atomic rename), index row second (committed
        transaction): a crash between the two leaves an orphan shard that
        the next ``put`` of the same content reuses and ``gc`` can clean —
        never a row pointing at missing or torn data.  Re-putting a digest
        replaces the cell (same content by construction).
        """
        digest = key.digest
        shard_rel = f"{_SHARDS_DIR}/{digest[:2]}/{digest}{self.backend.extension}"
        atomic_write_text(self.root / shard_rel, self.backend.dumps(records))
        params = json.loads(key.params)
        with self._lock:
            self._connection.execute(
                "INSERT OR REPLACE INTO cells VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    digest,
                    key.schema_version,
                    key.system,
                    key.rate,
                    key.num_nodes,
                    key.repetition,
                    params["scenario"],
                    params["duty_model"],
                    params["link_model"],
                    params["loss_probability"],
                    params["n_sources"],
                    params["source_placement"],
                    params["seed"],
                    json.dumps(list(key.policies)),
                    key.params,
                    self.backend.name,
                    shard_rel,
                    len(records),
                    datetime.now(timezone.utc).isoformat(timespec="seconds"),
                ),
            )
            self._connection.commit()
        if EVENT_BUS.active:
            EVENT_BUS.emit(_events.StorePut(digest, len(records)))
        return digest

    # -- the operator surface ---------------------------------------------

    def stats(self) -> StoreStats:
        """Aggregate counts over the index plus shard bytes on disk."""
        with self._lock:
            cells, records = self._connection.execute(
                "SELECT COUNT(*), COALESCE(SUM(num_records), 0) FROM cells"
            ).fetchone()

        def _grouped(column: str) -> dict:
            with self._lock:
                return dict(
                    self._connection.execute(
                        f"SELECT {column}, COUNT(*) FROM cells "
                        f"GROUP BY {column} ORDER BY {column}"
                    ).fetchall()
                )

        shard_bytes = sum(
            path.stat().st_size
            for path in (self.root / _SHARDS_DIR).glob("*/*")
            if path.is_file()
        )
        return StoreStats(
            cells=cells,
            records=records,
            shard_bytes=shard_bytes,
            systems=_grouped("system"),
            scenarios=_grouped("scenario"),
            link_models=_grouped("link_model"),
            schema_versions=_grouped("schema_version"),
        )

    def gc(self) -> GcStats:
        """Remove everything unreachable: dangling rows, orphan shards,
        cells of old schema versions (their digests can never be requested
        again — the digest embeds the version), and leftover temp files.

        Dot-prefixed temp files younger than the reap age are a concurrent
        writer's live atomic write (a sweep or a fabric coordinator mid
        commit): they are *reported* in
        :attr:`GcStats.in_flight_temp_files` but never deleted, so gc is
        safe to run alongside a live fleet.
        """
        with self._lock:
            stale = self._connection.execute(
                "SELECT digest, shard FROM cells WHERE schema_version != ?",
                (STORE_SCHEMA_VERSION,),
            ).fetchall()
            for digest, shard in stale:
                (self.root / shard).unlink(missing_ok=True)
                self._connection.execute(
                    "DELETE FROM cells WHERE digest = ?", (digest,)
                )

            dangling = [
                (digest, shard)
                for digest, shard in self._connection.execute(
                    "SELECT digest, shard FROM cells"
                ).fetchall()
                if not (self.root / shard).is_file()
            ]
            for digest, _ in dangling:
                self._connection.execute(
                    "DELETE FROM cells WHERE digest = ?", (digest,)
                )
            self._connection.commit()

            referenced = {
                shard
                for (shard,) in self._connection.execute("SELECT shard FROM cells")
            }
        orphans = temps = in_flight = 0
        now = time.time()
        shards_root = self.root / _SHARDS_DIR
        for path in sorted(shards_root.glob("*/*")) if shards_root.is_dir() else []:
            if not path.is_file():
                continue
            if path.name.startswith("."):
                # A dot-prefixed file is an in-flight atomic write: only
                # reap it once it is old enough to be a crash leftover, so
                # gc is safe to run alongside a live sweep.
                if now - path.stat().st_mtime > _TEMP_FILE_MAX_AGE_S:
                    path.unlink()
                    temps += 1
                else:
                    in_flight += 1
            elif str(path.relative_to(self.root)) not in referenced:
                path.unlink()
                orphans += 1
        return GcStats(
            dangling_rows=len(dangling),
            orphan_shards=orphans,
            stale_schema_cells=len(stale),
            temp_files=temps,
            in_flight_temp_files=in_flight,
        )

    def iter_cells(self) -> Iterator[tuple[dict, "list[RunRecord]"]]:
        """Every cached cell in canonical order: ``(index row, records)``.

        The index row comes back as a plain column dict; cells whose shard
        has vanished are skipped (``gc`` reaps their rows).
        """
        yield from self._matching_cells({})

    def export(self, format: str = "jsonl") -> str:
        """Every cached record, canonically ordered, in one ``format`` blob.

        The output is ``loads``-compatible with the named backend, so an
        export re-imports losslessly (the ``store export`` round trip).
        """
        backend = get_store_backend(format)
        records: list = []
        for _, cell_records in self.iter_cells():
            records.extend(cell_records)
        return backend.dumps(records)

    def query(self, *, policy: str | None = None, **filters: object) -> "SweepResult":
        """Cached records as a :class:`~repro.experiments.runner.SweepResult`.

        See :func:`repro.store.query.query_records` for filter semantics.
        """
        from repro.store.query import query_records

        return query_records(self, policy=policy, **filters)

    # -- internals shared with the query layer ----------------------------

    def _matching_cells(
        self, filters: dict[str, object]
    ) -> "list[tuple[dict, list[RunRecord]]]":
        unknown = sorted(set(filters) - set(_QUERYABLE_COLUMNS))
        if unknown:
            raise ValueError(
                f"unknown query filters {unknown}; queryable columns: "
                f"{sorted(_QUERYABLE_COLUMNS)}"
            )
        clauses = [f"{column} = ?" for column in filters]
        where = f"WHERE {' AND '.join(clauses)} " if clauses else ""
        with self._lock:
            cursor = self._connection.execute(
                f"SELECT * FROM cells {where}{_CANONICAL_ORDER}",
                tuple(filters.values()),
            )
            columns = [description[0] for description in cursor.description]
            rows = cursor.fetchall()
        cells = []
        for values in rows:
            row = dict(zip(columns, values))
            try:
                text = (self.root / row["shard"]).read_text(encoding="utf-8")
            except FileNotFoundError:
                continue
            cells.append((row, get_store_backend(row["backend"]).loads(text)))
        return cells


def open_store(
    path: Path | str | None, *, backend: str = "jsonl"
) -> ExperimentStore | None:
    """Open ``path`` as an :class:`ExperimentStore` (``None`` passes through).

    The convenience used by the CLI and the figure generators so "no
    ``--store``" and "store at PATH" share one code path.
    """
    if path is None:
        return None
    return ExperimentStore(path, backend=backend)
