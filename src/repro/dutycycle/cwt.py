"""Cycle waiting time (CWT) queries.

The paper defines the CWT ``t(u, v)`` as the time node ``u`` (which holds the
message at some slot ``t``) waits until its successor ``v`` can be served by
``v``'s next sending opportunity::

    t(u, v) = min { t_i - t }  over  t_i ∈ T(v), t_i > t ∈ T(u)

i.e. the gap between ``u``'s sending slot ``t`` and the first later slot at
which ``v`` itself may forward the message.  CWTs drive two parts of the
system: the asynchronous E-model weights (Eq. 11) and the analysis of the
worst case in Theorem 1 (a full ``2r`` slots when both ends share a
schedule).
"""

from __future__ import annotations

from repro.dutycycle.schedule import WakeupSchedule

__all__ = ["cycle_waiting_time", "expected_cwt", "max_cwt"]


def cycle_waiting_time(
    schedule: WakeupSchedule, u: int, v: int, slot: int
) -> int:
    """CWT from ``u`` sending at ``slot`` until ``v`` can forward.

    ``slot`` should be a sending slot of ``u`` (the function does not check
    this so it can also be used for what-if queries).  The result is at
    least 1: even if ``v`` wakes in the very next slot, one slot elapses.
    """
    if slot < 1:
        raise ValueError(f"slots are 1-based, got {slot}")
    next_v = schedule.next_active_slot(v, slot + 1)
    return next_v - slot


def expected_cwt(rate: int) -> float:
    """The expected CWT under a uniform-random wake-up slot per cycle.

    Used as the proactive (pre-broadcast) weight in the asynchronous
    E-model construction, where the actual send slot is not yet known:
    on average the successor's next wake-up is ``(r + 1) / 2`` slots away.
    """
    if rate < 1:
        raise ValueError(f"cycle rate must be >= 1, got {rate}")
    return (rate + 1) / 2.0


def max_cwt(rate: int) -> int:
    """Worst-case CWT for one hop (Theorem 1 uses ``2r``).

    The successor may have woken just before the sender's slot and then be
    scheduled last in its next cycle, so the wait is bounded by two cycles.
    """
    if rate < 1:
        raise ValueError(f"cycle rate must be >= 1, got {rate}")
    return 2 * rate
