"""Pseudo-random wake-up schedules ``T(u)`` for the duty-cycle system.

Section III of the paper: each node periodically turns its *sending* channel
on according to "a pseudo-random sequence in the uniform distribution with a
preset seed"; the receiving channel is always on.  With cycle rate ``r``
(slots per cycle on average), the node is active to send once per ``r``-slot
cycle, but not at a fixed offset: the active slot inside each cycle is drawn
uniformly at random.  Because the sequence is pseudo-random with a known
seed, any neighbour that learned the seed and the last active slot during
beaconing can *predict* future wake-ups — which is exactly the API exposed
here (:meth:`WakeupSchedule.next_active_slot`).

The implementation materialises wake-up slots lazily, cycle by cycle, so a
schedule can be queried arbitrarily far into the future without
pre-committing to a horizon.

Heterogeneous rates
-------------------
The paper assigns one global cycle rate ``r`` to every node.  Real
deployments are rarely that homogeneous: mains-powered backbone nodes duty
cycle aggressively while battery nodes sleep most of the time.
:class:`WakeupSchedule` therefore accepts an optional per-node ``rates``
mapping that overrides the base rate node by node; every query API
(:meth:`~WakeupSchedule.is_active`, :meth:`~WakeupSchedule.next_active_slot`,
:meth:`~WakeupSchedule.activity_window`, ...) is rate-agnostic.  Named rate
*assignment models* (two-tier, zipf, ...) live in
:mod:`repro.dutycycle.models`.  Worst-case bounds (simulation caps, search
horizons) must use :attr:`WakeupSchedule.max_rate` — the slowest node's
rate — rather than :attr:`WakeupSchedule.rate`, which stays the base rate.

Determinism contract: a node's wake-up stream depends only on
``(seed, node_id, its rate)``, never on the other nodes' rates, so any two
schedules built from the same seed agree on every node they share.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.utils.rng import derive_seed, make_rng
from repro.utils.validation import require

__all__ = ["WakeupSchedule"]


class _NodeSequence:
    """Lazily generated wake-up slots for a single node."""

    __slots__ = ("_rate", "_rng", "_slots", "_slot_set", "_cycles_generated")

    def __init__(self, rate: int, seed: int) -> None:
        self._rate = rate
        self._rng = make_rng(seed)
        self._slots: list[int] = []
        self._slot_set: set[int] = set()
        self._cycles_generated = 0

    def _extend_to_slot(self, slot: int) -> None:
        """Generate cycles until the sequence covers ``slot``."""
        needed_cycles = max(self._cycles_generated, (slot // self._rate) + 2)
        while self._cycles_generated < needed_cycles:
            cycle_index = self._cycles_generated
            # Cycle k spans slots [k*r + 1, (k+1)*r]; the active slot is a
            # uniform draw within the cycle.
            offset = int(self._rng.integers(1, self._rate + 1))
            active = cycle_index * self._rate + offset
            self._slots.append(active)
            self._slot_set.add(active)
            self._cycles_generated += 1

    def is_active(self, slot: int) -> bool:
        self._extend_to_slot(slot)
        return slot in self._slot_set

    def next_active(self, slot: int) -> int:
        """The smallest active slot >= ``slot``."""
        self._extend_to_slot(slot + 2 * self._rate)
        for active in self._slots:
            if active >= slot:
                return active
        # The extension above guarantees at least one active slot beyond
        # ``slot`` exists; this is unreachable but keeps mypy/readers happy.
        raise AssertionError("wake-up sequence generation fell behind")  # pragma: no cover

    def active_slots_until(self, horizon: int) -> list[int]:
        self._extend_to_slot(horizon)
        return [s for s in self._slots if s <= horizon]


class _ExplicitSequence:
    """Wake-up slots given explicitly (used for the paper's worked examples)."""

    __slots__ = ("_rate", "_slots", "_slot_set")

    def __init__(self, rate: int, slots: Sequence[int]) -> None:
        ordered = sorted(set(int(s) for s in slots))
        require(bool(ordered), "explicit schedule needs at least one slot")
        require(ordered[0] >= 1, "slots are 1-based; got a slot < 1")
        self._rate = rate
        self._slots = ordered
        self._slot_set = set(ordered)

    def _horizon(self) -> int:
        """Length of the explicitly specified (repeating) prefix, in slots."""
        return ((self._slots[-1] - 1) // self._rate + 1) * self._rate

    def is_active(self, slot: int) -> bool:
        if slot in self._slot_set:
            return True
        # Beyond the explicit horizon the pattern repeats, which keeps
        # examples finite while still defining an infinite schedule.
        horizon = self._horizon()
        if slot > horizon:
            reduced = (slot - 1) % horizon + 1
            return reduced in self._slot_set
        return False

    def next_active(self, slot: int) -> int:
        for active in self._slots:
            if active >= slot:
                return active
        horizon = self._horizon()
        base = ((slot - 1) // horizon) * horizon
        while True:
            for active in self._slots:
                candidate = base + active
                if candidate >= slot:
                    return candidate
            base += horizon

    def active_slots_until(self, horizon: int) -> list[int]:
        return [s for s in range(1, horizon + 1) if self.is_active(s)]


class WakeupSchedule:
    """Wake-up schedules for every node of a topology.

    Parameters
    ----------
    node_ids:
        The nodes to generate schedules for.
    rate:
        The base cycle rate ``r`` (paper notation): on average one sending
        opportunity every ``r`` slots.  ``rate=1`` degenerates to the
        synchronous system (every node can send every slot).
    seed:
        Base seed; each node derives an independent stream.
    explicit:
        Optional mapping ``node_id -> sequence of active slots`` overriding
        the pseudo-random generation for those nodes (used to reproduce the
        paper's Figure 2(e)/Table IV example).
    rates:
        Optional mapping ``node_id -> cycle rate`` overriding the base rate
        for those nodes (heterogeneous duty cycling; see
        :mod:`repro.dutycycle.models` for named assignment models).  Nodes
        absent from the mapping keep the base ``rate``.
    """

    def __init__(
        self,
        node_ids: Iterable[int],
        rate: int,
        *,
        seed: int | None = 0,
        explicit: Mapping[int, Sequence[int]] | None = None,
        rates: Mapping[int, int] | None = None,
    ) -> None:
        require(rate >= 1, f"cycle rate must be >= 1, got {rate}")
        self._rate = int(rate)
        self._node_ids = tuple(sorted(set(int(u) for u in node_ids)))
        base_seed = 0 if seed is None else int(seed)
        explicit = dict(explicit or {})
        unknown = set(explicit) - set(self._node_ids)
        if unknown:
            raise ValueError(f"explicit schedules for unknown nodes: {sorted(unknown)}")
        overrides = {int(u): int(r) for u, r in (rates or {}).items()}
        unknown_rates = set(overrides) - set(self._node_ids)
        if unknown_rates:
            raise ValueError(f"rates for unknown nodes: {sorted(unknown_rates)}")
        for node_id, node_rate in overrides.items():
            require(
                node_rate >= 1,
                f"cycle rate must be >= 1, got {node_rate} for node {node_id}",
            )
        self._rates: dict[int, int] = {
            u: overrides.get(u, self._rate) for u in self._node_ids
        }
        self._sequences: dict[int, _NodeSequence | _ExplicitSequence] = {}
        for node_id in self._node_ids:
            node_rate = self._rates[node_id]
            if node_id in explicit:
                self._sequences[node_id] = _ExplicitSequence(node_rate, explicit[node_id])
            else:
                self._sequences[node_id] = _NodeSequence(
                    node_rate, derive_seed(base_seed, "wakeup", node_id)
                )

    # ------------------------------------------------------------------
    @property
    def rate(self) -> int:
        """The base cycle rate ``r`` (nodes without an override use it)."""
        return self._rate

    @property
    def max_rate(self) -> int:
        """The slowest node's cycle rate — use this for worst-case bounds."""
        return max(self._rates.values(), default=self._rate)

    @property
    def rates(self) -> dict[int, int]:
        """Per-node cycle rates (a copy; every node is present)."""
        return dict(self._rates)

    @property
    def is_heterogeneous(self) -> bool:
        """True iff at least two nodes have different cycle rates."""
        return len(set(self._rates.values())) > 1

    def rate_of(self, node_id: int) -> int:
        """The cycle rate of one node."""
        return self._rates[node_id]

    @property
    def node_ids(self) -> tuple[int, ...]:
        """Nodes covered by this schedule."""
        return self._node_ids

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._sequences

    def is_active(self, node_id: int, slot: int) -> bool:
        """True iff ``slot`` ∈ ``T(node_id)`` (the node may send then)."""
        if slot < 1:
            raise ValueError(f"slots are 1-based, got {slot}")
        return self._sequences[node_id].is_active(slot)

    def next_active_slot(self, node_id: int, slot: int) -> int:
        """The earliest slot >= ``slot`` at which ``node_id`` may send."""
        if slot < 1:
            raise ValueError(f"slots are 1-based, got {slot}")
        return self._sequences[node_id].next_active(slot)

    def awake_nodes(self, candidates: Iterable[int], slot: int) -> frozenset[int]:
        """Subset of ``candidates`` whose sending channel is on at ``slot``."""
        return frozenset(u for u in candidates if self.is_active(u, slot))

    def next_awake_slot(self, candidates: Iterable[int], slot: int) -> int | None:
        """Earliest slot >= ``slot`` at which *some* candidate is awake.

        Returns ``None`` when ``candidates`` is empty.  This is the hook the
        slot-based simulator uses to skip long stretches of idle slots
        without iterating them one by one.
        """
        best: int | None = None
        for u in candidates:
            nxt = self.next_active_slot(u, slot)
            if best is None or nxt < best:
                best = nxt
        return best

    def active_slots_until(self, node_id: int, horizon: int) -> list[int]:
        """All active slots of ``node_id`` up to and including ``horizon``."""
        if horizon < 1:
            return []
        return self._sequences[node_id].active_slots_until(horizon)

    def activity_window(
        self, node_ids: Sequence[int], start: int, stop: int
    ) -> np.ndarray:
        """Activity as a boolean matrix over a slot window (vectorized view).

        Row ``i`` follows ``node_ids[i]`` (callers pick the row order, e.g.
        the vectorized engine passes rows in topology-index order); column
        ``j`` is slot ``start + j``; ``stop`` is inclusive.  Entry
        ``(i, j)`` is ``True`` iff ``start + j`` is in ``T(node_ids[i])``,
        i.e. exactly :meth:`is_active` evaluated pointwise.  The per-node
        lazy sequences are materialised (and cached) up to ``stop``.
        """
        require(start >= 1, "slots are 1-based")
        width = stop - start + 1
        out = np.zeros((len(node_ids), max(width, 0)), dtype=bool)
        if width <= 0:
            return out
        for row, node_id in enumerate(node_ids):
            for slot in self._sequences[node_id].active_slots_until(stop):
                if slot >= start:
                    out[row, slot - start] = True
        return out

    def iter_active(self, node_id: int, start: int = 1) -> Iterator[int]:
        """Yield active slots of ``node_id`` from ``start`` onwards (infinite)."""
        slot = max(1, start)
        while True:
            slot = self.next_active_slot(node_id, slot)
            yield slot
            slot += 1

    # ------------------------------------------------------------------
    @classmethod
    def synchronous(cls, node_ids: Iterable[int]) -> "WakeupSchedule":
        """A degenerate schedule where every node may send in every slot."""
        return cls(node_ids, rate=1, seed=0)

    @classmethod
    def from_explicit(
        cls, schedules: Mapping[int, Sequence[int]], rate: int
    ) -> "WakeupSchedule":
        """Build a schedule entirely from explicit per-node slot lists."""
        return cls(schedules.keys(), rate=rate, seed=0, explicit=schedules)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WakeupSchedule(rate={self._rate}, nodes={len(self._node_ids)})"
