"""Asynchronous duty-cycle substrate: wake-up schedules, CWT, slot clock."""

from repro.dutycycle.clock import SlotClock
from repro.dutycycle.cwt import cycle_waiting_time, expected_cwt, max_cwt
from repro.dutycycle.schedule import WakeupSchedule

__all__ = [
    "SlotClock",
    "WakeupSchedule",
    "cycle_waiting_time",
    "expected_cwt",
    "max_cwt",
]
