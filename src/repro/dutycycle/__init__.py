"""Asynchronous duty-cycle substrate: wake-up schedules, rate models, CWT."""

from repro.dutycycle.clock import SlotClock
from repro.dutycycle.cwt import cycle_waiting_time, expected_cwt, max_cwt
from repro.dutycycle.models import (
    DUTY_MODELS,
    DutyModelSpec,
    assign_rates,
    build_wakeup_schedule,
    duty_model_names,
    list_duty_models,
    register_duty_model,
)
from repro.dutycycle.schedule import WakeupSchedule

__all__ = [
    "DUTY_MODELS",
    "DutyModelSpec",
    "SlotClock",
    "WakeupSchedule",
    "assign_rates",
    "build_wakeup_schedule",
    "cycle_waiting_time",
    "duty_model_names",
    "expected_cwt",
    "list_duty_models",
    "max_cwt",
    "register_duty_model",
]
