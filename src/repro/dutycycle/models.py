"""Named heterogeneous duty-cycle assignment models.

The paper gives every node the same cycle rate ``r``.  This module opens the
second workload axis: a *duty model* maps ``(node_ids, base_rate, rng)`` to a
per-node rate assignment, which :func:`build_wakeup_schedule` threads into
:class:`~repro.dutycycle.schedule.WakeupSchedule` via its ``rates=``
parameter.  Like scenarios, duty models are registered by name so the sweep
runner and the CLI (``--duty-model``, ``--list-duty-models``) can select
them without code changes.

Determinism contract: an assignment is a pure function of
``(model, node_ids, base_rate, params, seed)`` — the sweep runner derives
the seed per grid cell, so records stay bit-identical for any worker count.

Built-in models
---------------
``uniform``
    Every node at the base rate (the paper's setting; the default).
``two-tier``
    A random fraction of *backbone* nodes gets the shorter cycle
    ``base_rate * fast_factor`` (e.g. ``fast_factor=0.2`` turns ``r = 10``
    into ``r = 2``, i.e. 5x more wake-ups); the rest stay at the base
    rate.  Models mains-powered relays among battery nodes.
``zipf``
    Rates are the base rate scaled by a Zipf-distributed integer factor
    (capped at ``max_factor``): most nodes are at the base rate, a heavy
    tail sleeps much longer.  Models aggressive energy saving on a few
    nearly-depleted nodes.

Note: the E-model policy's expected-CWT edge weight
(:func:`repro.core.estimation.build_edge_estimate`) keeps using the base
rate — it is a scheduling heuristic, and simulated latencies remain exact
either way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.dutycycle.schedule import WakeupSchedule
from repro.utils.rng import make_rng
from repro.utils.validation import require

__all__ = [
    "DutyModelSpec",
    "DUTY_MODELS",
    "register_duty_model",
    "get_duty_model",
    "list_duty_models",
    "duty_model_names",
    "assign_rates",
    "build_wakeup_schedule",
]

#: Assignment signature: ``(node_ids, base_rate, rng, **params) -> rates``.
RateAssigner = Callable[..., dict[int, int]]


@dataclass(frozen=True)
class DutyModelSpec:
    """One named per-node duty-cycle rate assignment model."""

    name: str
    summary: str
    assign: RateAssigner
    defaults: Mapping[str, object] = field(default_factory=dict)


#: The global duty-model registry, keyed by model name.
DUTY_MODELS: dict[str, DutyModelSpec] = {}


def register_duty_model(spec: DutyModelSpec) -> DutyModelSpec:
    """Add ``spec`` to :data:`DUTY_MODELS` (refusing duplicate names)."""
    if spec.name in DUTY_MODELS:
        raise ValueError(f"duty model {spec.name!r} is already registered")
    DUTY_MODELS[spec.name] = spec
    return spec


def get_duty_model(name: str) -> DutyModelSpec:
    """Look up a duty model by name, with a helpful error on typos."""
    try:
        return DUTY_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown duty model {name!r}; registered models: {duty_model_names()}"
        ) from None


def duty_model_names() -> list[str]:
    """The registered duty-model names, sorted."""
    return sorted(DUTY_MODELS)


def list_duty_models() -> list[DutyModelSpec]:
    """All registered duty-model specs, sorted by name."""
    return [DUTY_MODELS[name] for name in duty_model_names()]


def assign_rates(
    name: str,
    node_ids: Iterable[int],
    base_rate: int,
    *,
    seed: int | None = None,
    **params: object,
) -> dict[int, int]:
    """Per-node cycle rates for the named model (all values >= 1)."""
    spec = get_duty_model(name)
    require(base_rate >= 1, f"base rate must be >= 1, got {base_rate}")
    merged = {**spec.defaults, **params}
    unknown = set(merged) - set(spec.defaults)
    if unknown:
        raise TypeError(
            f"duty model {name!r} got unknown parameters {sorted(unknown)}; "
            f"accepted: {sorted(spec.defaults)}"
        )
    ids = sorted(set(int(u) for u in node_ids))
    rates = spec.assign(ids, int(base_rate), make_rng(seed), **merged)
    # Real checks, not asserts: a third-party model violating the contract
    # would otherwise silently mis-size the engines' worst-case slot caps.
    require(
        set(rates) == set(ids),
        f"duty model {name!r} must assign a rate to every node",
    )
    require(
        all(r >= 1 for r in rates.values()),
        f"duty model {name!r} produced a rate < 1",
    )
    return rates


def build_wakeup_schedule(
    node_ids: Iterable[int],
    rate: int,
    *,
    seed: int | None = 0,
    model: str = "uniform",
    model_seed: int | None = None,
    **params: object,
) -> WakeupSchedule:
    """A :class:`WakeupSchedule` with rates assigned by the named model.

    ``seed`` drives the per-node wake-up streams exactly as in
    ``WakeupSchedule(node_ids, rate, seed=seed)``; ``model_seed`` drives the
    rate assignment (defaulting to ``seed`` so one seed fixes everything).
    With ``model="uniform"`` the result is bit-identical to constructing
    :class:`WakeupSchedule` directly.
    """
    ids = list(node_ids)
    effective_model_seed = seed if model_seed is None else model_seed
    rates = assign_rates(model, ids, rate, seed=effective_model_seed, **params)
    return WakeupSchedule(ids, rate, seed=seed, rates=rates)


# ----------------------------------------------------------------------
# Built-in models
# ----------------------------------------------------------------------
def _assign_uniform(
    node_ids: Sequence[int], base_rate: int, rng: np.random.Generator
) -> dict[int, int]:
    """Every node at the base rate (the paper's homogeneous setting)."""
    return {u: base_rate for u in node_ids}


def _assign_two_tier(
    node_ids: Sequence[int],
    base_rate: int,
    rng: np.random.Generator,
    *,
    fast_fraction: float = 0.2,
    fast_factor: float = 0.2,
) -> dict[int, int]:
    """A random backbone fraction cycles faster; the rest keep the base rate.

    Backbone nodes get ``max(1, round(base_rate * fast_factor))`` — e.g. the
    default turns ``r = 10`` into ``r = 2`` for 20% of the nodes.
    """
    require(0.0 <= fast_fraction <= 1.0, "fast_fraction must be in [0, 1]")
    require(0.0 < fast_factor <= 1.0, "fast_factor must be in (0, 1]")
    fast_rate = max(1, round(base_rate * fast_factor))
    count = round(fast_fraction * len(node_ids))
    fast = set()
    if count:
        chosen = rng.choice(len(node_ids), size=count, replace=False)
        fast = {node_ids[i] for i in chosen}
    return {u: (fast_rate if u in fast else base_rate) for u in node_ids}


def _assign_zipf(
    node_ids: Sequence[int],
    base_rate: int,
    rng: np.random.Generator,
    *,
    exponent: float = 2.0,
    max_factor: float = 4.0,
) -> dict[int, int]:
    """Base rate scaled by a capped Zipf factor: a heavy tail of sleepers."""
    require(exponent > 1.0, "exponent must be > 1 (Zipf normalisation)")
    require(max_factor >= 1.0, "max_factor must be >= 1")
    cap = max(base_rate, math.ceil(base_rate * max_factor))
    factors = rng.zipf(exponent, size=len(node_ids))
    return {
        u: min(int(base_rate * int(f)), cap) for u, f in zip(node_ids, factors)
    }


register_duty_model(
    DutyModelSpec(
        name="uniform",
        summary="Every node at the base rate r (the paper's setting)",
        assign=_assign_uniform,
        defaults={},
    )
)
register_duty_model(
    DutyModelSpec(
        name="two-tier",
        summary="A backbone fraction gets the shorter cycle fast_factor x base (mains-powered relays)",
        assign=_assign_two_tier,
        defaults={"fast_fraction": 0.2, "fast_factor": 0.2},
    )
)
register_duty_model(
    DutyModelSpec(
        name="zipf",
        summary="Zipf-scaled rates capped at max_factor x base (heavy tail of sleepers)",
        assign=_assign_zipf,
        defaults={"exponent": 2.0, "max_factor": 4.0},
    )
)
