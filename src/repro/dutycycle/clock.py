"""Slot clock helpers for the duty-cycle system.

The paper's network "simply synchronizes all node actions into each round
∈ T = {1, 2, 3, ...}" without requiring a global clock; in the simulator we
do keep a global slot counter, and this small class centralises the 1-based
slot arithmetic (cycle index, slot-within-cycle) so it is not re-derived in
several places.
"""

from __future__ import annotations

from repro.utils.validation import require

__all__ = ["SlotClock"]


class SlotClock:
    """1-based slot counter with cycle arithmetic for cycle rate ``r``."""

    __slots__ = ("_rate", "_slot")

    def __init__(self, rate: int = 1, start: int = 1) -> None:
        require(rate >= 1, f"cycle rate must be >= 1, got {rate}")
        require(start >= 1, f"start slot must be >= 1, got {start}")
        self._rate = int(rate)
        self._slot = int(start)

    @property
    def rate(self) -> int:
        """The cycle rate ``r``."""
        return self._rate

    @property
    def slot(self) -> int:
        """The current slot (1-based)."""
        return self._slot

    @property
    def cycle(self) -> int:
        """The current cycle index (0-based): slots 1..r are cycle 0."""
        return (self._slot - 1) // self._rate

    @property
    def slot_in_cycle(self) -> int:
        """Position of the current slot within its cycle (1..r)."""
        return (self._slot - 1) % self._rate + 1

    def tick(self, slots: int = 1) -> int:
        """Advance the clock by ``slots`` and return the new slot."""
        require(slots >= 1, f"must advance by >= 1 slot, got {slots}")
        self._slot += slots
        return self._slot

    def advance_to(self, slot: int) -> int:
        """Jump forward to ``slot`` (must not move backwards)."""
        require(slot >= self._slot, f"cannot move clock backwards to {slot}")
        self._slot = int(slot)
        return self._slot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlotClock(rate={self._rate}, slot={self._slot})"
