"""Seeded source placement for multi-source broadcast workloads.

A multi-source broadcast starts ``k`` concurrent wavefronts, one per
message; *where* those messages originate shapes how hard the workload is
(far-apart wavefronts barely meet, co-located ones contend for every slot).
This module is the single registry of placement strategies, shared by the
experiment stack (``SweepConfig.source_placement``) and the CLI
(``--source-placement``):

* ``"random"`` — ``k`` distinct nodes drawn uniformly from a dedicated
  seeded stream (the default; matches the paper's random-source habit);
* ``"spread"`` — a farthest-point traversal on hop distances, so wavefronts
  start as far apart as the deployment allows (minimal contention);
* ``"corner"`` — sources snap to the corners of the deployment area (then
  the centre and the side midpoints for ``k > 4``), the classic
  stress-from-the-rim workload (wavefronts collide mid-network).

Determinism contract
--------------------
Every strategy is a pure function of ``(topology, k, seed, anchor)``:
``"random"`` consumes only the RNG derived from ``seed``, and ``"spread"`` /
``"corner"`` consume no randomness at all (ties break on node id).  The
sweep runner derives the seed per cell (``derive_seed(cell_seed,
"multi-source")``), so records are bit-identical for any worker count and
either engine backend.  When an ``anchor`` is given (the runner passes the
deployment's eccentricity-vetted source), it is always ``sources[0]`` and
the strategy places the remaining ``k - 1``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.network.topology import WSNTopology
from repro.utils.rng import make_rng
from repro.utils.validation import require

__all__ = ["SOURCE_PLACEMENTS", "placement_names", "select_sources"]


def _place_random(
    topology: WSNTopology,
    k: int,
    seed: int | None,
    area_side: float | None,
    chosen: list[int],
) -> list[int]:
    """Draw the remaining sources uniformly without replacement."""
    rng = make_rng(seed)
    pool = sorted(set(topology.node_ids) - set(chosen))
    picks = rng.choice(len(pool), size=k - len(chosen), replace=False)
    chosen.extend(pool[int(i)] for i in picks)
    return chosen


def _place_spread(
    topology: WSNTopology,
    k: int,
    seed: int | None,
    area_side: float | None,
    chosen: list[int],
) -> list[int]:
    """Farthest-point traversal: maximise the minimum hop distance."""
    if not chosen:
        # Deterministic anchor: the lowest node id (no RNG on this path).
        chosen.append(min(topology.node_ids))
    # min hop distance from every node to the chosen set, updated per pick.
    min_hops = {u: np.inf for u in topology.node_ids}
    for s in chosen:
        for u, d in topology.hop_distances(s).items():
            if d < min_hops[u]:
                min_hops[u] = d
    while len(chosen) < k:
        best = max(
            (u for u in topology.node_ids if u not in chosen),
            key=lambda u: (min_hops[u], -u),
        )
        chosen.append(best)
        for u, d in topology.hop_distances(best).items():
            if d < min_hops[u]:
                min_hops[u] = d
    return chosen


def _place_corner(
    topology: WSNTopology,
    k: int,
    seed: int | None,
    area_side: float | None,
    chosen: list[int],
) -> list[int]:
    """Snap sources to the area corners (then centre and side midpoints)."""
    positions = topology.positions
    if area_side is not None:
        lo_x = lo_y = 0.0
        hi_x = hi_y = float(area_side)
    else:
        lo_x, lo_y = positions.min(axis=0)
        hi_x, hi_y = positions.max(axis=0)
    mid_x, mid_y = (lo_x + hi_x) / 2.0, (lo_y + hi_y) / 2.0
    anchors = [
        (lo_x, lo_y),
        (hi_x, hi_y),
        (hi_x, lo_y),
        (lo_x, hi_y),
        (mid_x, mid_y),
        (mid_x, lo_y),
        (hi_x, mid_y),
        (mid_x, hi_y),
        (lo_x, mid_y),
    ]
    ids = topology.node_ids
    row = {u: i for i, u in enumerate(ids)}
    anchor_index = 0
    while len(chosen) < k:
        if anchor_index < len(anchors):
            ax, ay = anchors[anchor_index]
            anchor_index += 1
        else:
            # More sources than anchor points: fall back to the centre (the
            # nearest-unused rule below still yields distinct nodes).
            ax, ay = mid_x, mid_y
        distances = np.hypot(positions[:, 0] - ax, positions[:, 1] - ay)
        taken = set(chosen)
        best = min(
            (u for u in ids if u not in taken),
            key=lambda u: (float(distances[row[u]]), u),
        )
        chosen.append(best)
    return chosen


#: Registry of placement strategies: ``name -> place(topology, k, seed,
#: area_side, chosen)`` extending ``chosen`` (the already-fixed prefix) to
#: ``k`` distinct node ids.
SOURCE_PLACEMENTS: dict[
    str, Callable[[WSNTopology, int, int | None, float | None, list[int]], list[int]]
] = {
    "random": _place_random,
    "spread": _place_spread,
    "corner": _place_corner,
}


def placement_names() -> list[str]:
    """The registered source-placement names, sorted."""
    return sorted(SOURCE_PLACEMENTS)


def select_sources(
    topology: WSNTopology,
    k: int,
    *,
    placement: str = "random",
    seed: int | None = 0,
    area_side: float | None = None,
    anchor: int | None = None,
) -> tuple[int, ...]:
    """Select ``k`` distinct broadcast sources with a named strategy.

    Parameters
    ----------
    topology:
        The deployed network.
    k:
        Number of concurrent messages (``1 <= k <= num_nodes``).
    placement:
        A strategy from :data:`SOURCE_PLACEMENTS`.
    seed:
        Seed of the dedicated placement stream (only ``"random"`` draws
        from it; the other strategies are fully deterministic).
    area_side:
        Deployment area side for ``"corner"`` (defaults to the positions'
        bounding box).
    anchor:
        Optional pre-selected source, always returned first — the sweep
        runner passes the deployment's eccentricity-vetted source so the
        ``k = 1`` workload reproduces the single-source records exactly.
    """
    require(k >= 1, f"need at least one source, got {k}")
    require(
        k <= topology.num_nodes,
        f"cannot place {k} sources on {topology.num_nodes} nodes",
    )
    try:
        place = SOURCE_PLACEMENTS[placement]
    except KeyError:
        raise ValueError(
            f"unknown source placement {placement!r}; expected one of "
            f"{placement_names()}"
        ) from None
    chosen: list[int] = []
    if anchor is not None:
        require(anchor in topology, f"unknown anchor source {anchor}")
        chosen.append(int(anchor))
    if len(chosen) < k:
        chosen = place(topology, k, seed, area_side, chosen)
    sources = tuple(int(u) for u in chosen[:k])
    assert len(set(sources)) == k
    return sources
