"""Interference predicates under the UDG model.

The paper's colour definition (Eq. 1, constraint 3) declares two concurrent
relays ``u`` and ``v`` interference-free iff they have **no common uncovered
neighbour**::

    N(u) ∩ N(v) ∩ W̄ = ∅

i.e. no node that still needs the message would hear both transmissions in
the same round/slot.  Covered nodes hearing multiple transmissions are
harmless because they already hold the message.  These predicates are the
single implementation used by the colouring engine, the simulators' schedule
validator and the baselines, so the notion of "conflict" cannot drift between
the scheduler and the checker.
"""

from __future__ import annotations

from itertools import combinations
from typing import Collection, Iterable

from repro.network.topology import WSNTopology

__all__ = [
    "has_conflict",
    "conflict_free",
    "conflicting_pairs",
    "receivers_of",
    "collision_victims",
]


def has_conflict(
    topology: WSNTopology,
    u: int,
    v: int,
    covered: frozenset[int] | set[int],
) -> bool:
    """True iff transmitters ``u`` and ``v`` share an uncovered neighbour."""
    if u == v:
        return False
    uncovered_mask = topology.full_mask & ~topology.mask_from_nodes(covered)
    return bool(
        topology.neighbor_mask(u) & topology.neighbor_mask(v) & uncovered_mask
    )


def conflict_free(
    topology: WSNTopology,
    transmitters: Collection[int],
    covered: frozenset[int] | set[int],
) -> bool:
    """True iff no pair of ``transmitters`` conflicts with respect to ``covered``."""
    transmitters = list(transmitters)
    uncovered_mask = topology.full_mask & ~topology.mask_from_nodes(covered)
    for u, v in combinations(transmitters, 2):
        if topology.neighbor_mask(u) & topology.neighbor_mask(v) & uncovered_mask:
            return False
    return True


def conflicting_pairs(
    topology: WSNTopology,
    transmitters: Collection[int],
    covered: frozenset[int] | set[int],
) -> list[tuple[int, int]]:
    """Return every conflicting transmitter pair (ordered, for diagnostics)."""
    pairs: list[tuple[int, int]] = []
    ordered = sorted(transmitters)
    uncovered_mask = topology.full_mask & ~topology.mask_from_nodes(covered)
    for u, v in combinations(ordered, 2):
        if topology.neighbor_mask(u) & topology.neighbor_mask(v) & uncovered_mask:
            pairs.append((u, v))
    return pairs


def receivers_of(
    topology: WSNTopology,
    transmitters: Iterable[int],
    covered: frozenset[int] | set[int],
) -> frozenset[int]:
    """The set of uncovered nodes reached by an interference-free relay set.

    This is the *broadcasting advance* ``A(W, t)`` of the paper when
    ``transmitters`` is the selected colour: the union of the transmitters'
    neighbourhoods restricted to ``W̄``.  The caller is responsible for
    ensuring the set is conflict-free (use :func:`conflict_free`).
    """
    reached_mask = 0
    for u in transmitters:
        reached_mask |= topology.neighbor_mask(u)
    reached_mask &= ~topology.mask_from_nodes(covered)
    return topology.nodes_from_mask(reached_mask)


def collision_victims(
    topology: WSNTopology,
    transmitters: Collection[int],
    covered: frozenset[int] | set[int],
) -> frozenset[int]:
    """Uncovered nodes that would hear two or more of ``transmitters``.

    Useful for diagnostics and for modelling what *would* happen if a
    conflicting set were transmitted anyway (the victims receive garbage and
    stay uncovered).
    """
    heard_once: set[int] = set()
    heard_twice: set[int] = set()
    covered = frozenset(covered)
    for u in transmitters:
        for v in topology.neighbors(u):
            if v in covered:
                continue
            if v in heard_once:
                heard_twice.add(v)
            else:
                heard_once.add(v)
    return frozenset(heard_twice)
