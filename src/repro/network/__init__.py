"""WSN topology substrate: unit-disc graphs, deployments, quadrants, boundary."""

from repro.network.bitset import BitsetTopology, bitset_view
from repro.network.boundary import boundary_nodes, hull_nodes
from repro.network.deployment import (
    Deployment,
    DeploymentConfig,
    deploy_uniform,
    grid_deployment,
)
from repro.network.geometry import convex_hull, euclidean_distance
from repro.network.graphs import (
    figure1_topology,
    figure2_duty_schedule,
    figure2_topology,
)
from repro.network.interference import (
    conflict_free,
    conflicting_pairs,
    has_conflict,
    receivers_of,
)
from repro.network.quadrant import QUADRANTS, quadrant_index, quadrant_neighbors
from repro.network.sources import SOURCE_PLACEMENTS, placement_names, select_sources
from repro.network.topology import Node, WSNTopology

__all__ = [
    "BitsetTopology",
    "Deployment",
    "DeploymentConfig",
    "Node",
    "QUADRANTS",
    "SOURCE_PLACEMENTS",
    "WSNTopology",
    "bitset_view",
    "boundary_nodes",
    "conflict_free",
    "conflicting_pairs",
    "convex_hull",
    "deploy_uniform",
    "euclidean_distance",
    "figure1_topology",
    "figure2_duty_schedule",
    "figure2_topology",
    "grid_deployment",
    "has_conflict",
    "hull_nodes",
    "placement_names",
    "quadrant_index",
    "quadrant_neighbors",
    "receivers_of",
    "select_sources",
]
