"""WSN topology under the unit-disc-graph (UDG) model.

The paper models a WSN as a graph ``G = (N, E)`` where ``N(u)`` is the set of
neighbours within the communication radius of node ``u`` (Section III).  The
:class:`WSNTopology` class below is the single source of truth used by every
other subsystem: colouring, the time counter ``M``, the E-model construction,
the baselines, and both simulators.

Two construction paths are supported:

* :meth:`WSNTopology.from_positions` — the UDG induced by node coordinates
  and a communication radius (the path used by random deployments); and
* :meth:`WSNTopology.from_edges` — an explicit edge list with coordinates
  attached, used for the paper's hand-drawn example topologies (Figures 1
  and 2) where the adjacency is dictated by the figure rather than a radius.

Neighbourhoods are precomputed into ``frozenset`` objects at construction so
the scheduling inner loops (which query ``N(u)`` millions of times) never pay
for recomputation, following the "compute once, reuse everywhere" guidance of
the HPC Python guides.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.network.geometry import pairwise_distances
from repro.utils.validation import check_positive

__all__ = ["Node", "WSNTopology"]

NodeId = int


@dataclass(frozen=True, order=True)
class Node:
    """A sensor node: an integer identifier and a planar position.

    Attributes
    ----------
    node_id:
        Integer identifier, unique within a topology.
    x, y:
        Position in the deployment area (the paper uses feet).
    """

    node_id: NodeId
    x: float
    y: float

    @property
    def position(self) -> tuple[float, float]:
        """The (x, y) position as a tuple."""
        return (self.x, self.y)


class WSNTopology:
    """An immutable WSN topology with precomputed neighbourhoods.

    Parameters
    ----------
    nodes:
        The sensor nodes.  Identifiers must be unique.
    adjacency:
        Mapping from node id to the set of neighbour ids.  Must be symmetric
        and irreflexive.
    radius:
        The communication radius used to build the adjacency, if any.  Kept
        for reporting; ``None`` for hand-specified topologies.
    """

    __slots__ = (
        "_nodes",
        "_adjacency",
        "_radius",
        "_node_ids",
        "_positions",
        "_id_to_index",
        "_neighbor_masks",
        "_full_mask",
        "_node_set",
        # Weak-referenceable so derived views (e.g. the vectorized backend's
        # BitsetTopology) can be cached per topology without keeping dead
        # topologies alive.
        "__weakref__",
    )

    def __init__(
        self,
        nodes: Iterable[Node],
        adjacency: Mapping[NodeId, Iterable[NodeId]],
        radius: float | None = None,
    ) -> None:
        node_list = sorted(nodes, key=lambda n: n.node_id)
        ids = [n.node_id for n in node_list]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node identifiers in topology")
        self._nodes: dict[NodeId, Node] = {n.node_id: n for n in node_list}
        self._node_ids: tuple[NodeId, ...] = tuple(ids)
        self._node_set: frozenset[NodeId] = frozenset(ids)
        self._id_to_index: dict[NodeId, int] = {u: i for i, u in enumerate(ids)}
        self._positions = np.array([[n.x, n.y] for n in node_list], dtype=float)
        self._radius = radius

        frozen: dict[NodeId, frozenset[NodeId]] = {}
        for node_id in ids:
            neighbours = frozenset(adjacency.get(node_id, ()))
            if node_id in neighbours:
                raise ValueError(f"node {node_id} listed as its own neighbour")
            unknown = neighbours - self._nodes.keys()
            if unknown:
                raise ValueError(
                    f"node {node_id} has neighbours not in the topology: {sorted(unknown)}"
                )
            frozen[node_id] = neighbours
        for u, neighbours in frozen.items():
            for v in neighbours:
                if u not in frozen[v]:
                    raise ValueError(f"adjacency is not symmetric: {u}->{v}")
        self._adjacency = frozen

        # Bitmask fast path: node sets represented as Python integers with
        # bit ``i`` standing for ``node_ids[i]``.  The scheduling inner loops
        # (conflict tests, coverage unions, frontier extraction) operate on
        # these masks, which is orders of magnitude cheaper than frozenset
        # algebra at the paper's 300-node scale.
        self._neighbor_masks: dict[NodeId, int] = {}
        for u, neighbours in frozen.items():
            mask = 0
            for v in neighbours:
                mask |= 1 << self._id_to_index[v]
            self._neighbor_masks[u] = mask
        self._full_mask = (1 << len(ids)) - 1

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_positions(
        cls,
        positions: Sequence[tuple[float, float]] | np.ndarray,
        radius: float,
        node_ids: Sequence[NodeId] | None = None,
    ) -> "WSNTopology":
        """Build the unit-disc graph induced by ``positions`` and ``radius``.

        Two nodes are neighbours iff their Euclidean distance is at most
        ``radius`` (inclusive, matching the UDG convention).
        """
        check_positive("radius", radius)
        positions = np.asarray(positions, dtype=float)
        count = positions.shape[0]
        if node_ids is None:
            node_ids = list(range(count))
        if len(node_ids) != count:
            raise ValueError("node_ids length must match positions length")

        nodes = [
            Node(node_id=int(node_ids[i]), x=float(positions[i, 0]), y=float(positions[i, 1]))
            for i in range(count)
        ]
        distances = pairwise_distances(positions)
        within = distances <= radius + 1e-12
        np.fill_diagonal(within, False)
        adjacency = {
            int(node_ids[i]): {int(node_ids[j]) for j in np.flatnonzero(within[i])}
            for i in range(count)
        }
        return cls(nodes, adjacency, radius=radius)

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[NodeId, NodeId]],
        positions: Mapping[NodeId, tuple[float, float]],
        radius: float | None = None,
    ) -> "WSNTopology":
        """Build a topology from an explicit undirected edge list.

        Used for the paper's example figures, where the adjacency is part of
        the figure.  Every endpoint must have a position in ``positions``.
        """
        adjacency: dict[NodeId, set[NodeId]] = {u: set() for u in positions}
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop on node {u}")
            if u not in positions or v not in positions:
                raise ValueError(f"edge ({u}, {v}) references a node without a position")
            adjacency[u].add(v)
            adjacency[v].add(u)
        nodes = [Node(node_id=u, x=float(p[0]), y=float(p[1])) for u, p in positions.items()]
        return cls(nodes, adjacency, radius=radius)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def radius(self) -> float | None:
        """The communication radius used for construction (``None`` if n/a)."""
        return self._radius

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the network, |N|."""
        return len(self._node_ids)

    @property
    def num_edges(self) -> int:
        """Number of undirected links."""
        return sum(len(v) for v in self._adjacency.values()) // 2

    @property
    def node_ids(self) -> tuple[NodeId, ...]:
        """All node identifiers in ascending order."""
        return self._node_ids

    @property
    def node_set(self) -> frozenset[NodeId]:
        """All node identifiers as a frozenset (the paper's ``N``).

        Precomputed at construction: the simulation loops compare against
        it once per round/slot.
        """
        return self._node_set

    def __len__(self) -> int:
        return self.num_nodes

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._node_ids)

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self._nodes

    def node(self, node_id: NodeId) -> Node:
        """Return the :class:`Node` for ``node_id``."""
        return self._nodes[node_id]

    def position(self, node_id: NodeId) -> tuple[float, float]:
        """Return the (x, y) position of ``node_id``."""
        return self._nodes[node_id].position

    @property
    def positions(self) -> np.ndarray:
        """A read-only (n, 2) array of positions, row order = ``node_ids``."""
        view = self._positions.view()
        view.setflags(write=False)
        return view

    def neighbors(self, node_id: NodeId) -> frozenset[NodeId]:
        """The 1-hop neighbourhood ``N(u)`` (excluding ``u`` itself)."""
        return self._adjacency[node_id]

    def closed_neighbors(self, node_id: NodeId) -> frozenset[NodeId]:
        """``N(u) ∪ {u}``."""
        return self._adjacency[node_id] | {node_id}

    def degree(self, node_id: NodeId) -> int:
        """The number of neighbours of ``node_id``."""
        return len(self._adjacency[node_id])

    def max_degree(self) -> int:
        """The maximum node degree of the network."""
        return max((len(v) for v in self._adjacency.values()), default=0)

    def average_degree(self) -> float:
        """The mean node degree of the network."""
        if not self._node_ids:
            return 0.0
        return sum(len(v) for v in self._adjacency.values()) / self.num_nodes

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """True iff ``u`` and ``v`` are within communication range."""
        return v in self._adjacency[u]

    def edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        """Iterate over each undirected link once, as (smaller, larger)."""
        for u in self._node_ids:
            for v in self._adjacency[u]:
                if u < v:
                    yield (u, v)

    def uncovered_neighbors(
        self, node_id: NodeId, covered: frozenset[NodeId] | set[NodeId]
    ) -> frozenset[NodeId]:
        """``N(u) ∩ W̄``: the neighbours of ``u`` still missing the message."""
        return self._adjacency[node_id] - covered

    # ------------------------------------------------------------------
    # Bitmask fast path (used by the scheduling inner loops)
    # ------------------------------------------------------------------
    @property
    def full_mask(self) -> int:
        """Bitmask with one bit set per node (the whole node set ``N``)."""
        return self._full_mask

    def index_of(self, node_id: NodeId) -> int:
        """Bit index of ``node_id`` in the mask representation."""
        return self._id_to_index[node_id]

    def neighbor_mask(self, node_id: NodeId) -> int:
        """``N(u)`` as a bitmask."""
        return self._neighbor_masks[node_id]

    def mask_from_nodes(self, nodes: Iterable[NodeId]) -> int:
        """Convert an iterable of node ids to a bitmask."""
        mask = 0
        index = self._id_to_index
        for u in nodes:
            mask |= 1 << index[u]
        return mask

    def nodes_from_mask(self, mask: int) -> frozenset[NodeId]:
        """Convert a bitmask back to a frozenset of node ids."""
        ids = self._node_ids
        result = []
        while mask:
            low = mask & -mask
            result.append(ids[low.bit_length() - 1])
            mask ^= low
        return frozenset(result)

    # ------------------------------------------------------------------
    # Graph-wide queries (BFS based)
    # ------------------------------------------------------------------
    def hop_distances(self, source: NodeId) -> dict[NodeId, int]:
        """Breadth-first hop distance from ``source`` to every reachable node."""
        if source not in self._nodes:
            raise KeyError(f"unknown source node {source}")
        distances = {source: 0}
        queue: deque[NodeId] = deque([source])
        while queue:
            u = queue.popleft()
            for v in self._adjacency[u]:
                if v not in distances:
                    distances[v] = distances[u] + 1
                    queue.append(v)
        return distances

    def bfs_layers(self, source: NodeId) -> list[frozenset[NodeId]]:
        """Nodes grouped by hop distance: layer 0 is ``{source}``."""
        distances = self.hop_distances(source)
        if not distances:
            return []
        depth = max(distances.values())
        layers: list[set[NodeId]] = [set() for _ in range(depth + 1)]
        for node_id, dist in distances.items():
            layers[dist].add(node_id)
        return [frozenset(layer) for layer in layers]

    def eccentricity(self, source: NodeId) -> int:
        """Hop distance from ``source`` to the farthest *reachable* node.

        This is the quantity ``d`` of Theorem 1.  Raises if the network is
        disconnected from ``source`` (the broadcast could never finish).
        """
        distances = self.hop_distances(source)
        if len(distances) != self.num_nodes:
            missing = self.node_set - distances.keys()
            raise ValueError(
                f"network is disconnected: {len(missing)} nodes unreachable from {source}"
            )
        return max(distances.values())

    def diameter(self) -> int:
        """The largest eccentricity over all nodes (hop diameter)."""
        return max(self.eccentricity(u) for u in self._node_ids)

    def is_connected(self) -> bool:
        """True iff every node is reachable from every other node."""
        if self.num_nodes == 0:
            return True
        start = self._node_ids[0]
        return len(self.hop_distances(start)) == self.num_nodes

    # ------------------------------------------------------------------
    # Interop / reporting
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Return an equivalent :class:`networkx.Graph` (for cross-checks)."""
        import networkx as nx

        graph = nx.Graph()
        for node_id in self._node_ids:
            node = self._nodes[node_id]
            graph.add_node(node_id, pos=(node.x, node.y))
        graph.add_edges_from(self.edges())
        return graph

    def density(self, area: float | None = None) -> float:
        """Nodes per unit area.

        ``area`` defaults to the bounding-box area of the deployment, which
        matches the paper's "nodes per Sq. Ft. over a 50 x 50 Sq. Ft. area"
        when the deployment spans the full area.
        """
        if area is None:
            if self.num_nodes < 2:
                return 0.0
            mins = self._positions.min(axis=0)
            maxs = self._positions.max(axis=0)
            area = float(np.prod(np.maximum(maxs - mins, 1e-9)))
        return self.num_nodes / area

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WSNTopology(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
            f"radius={self._radius})"
        )
