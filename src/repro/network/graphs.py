"""The paper's example topologies (Figures 1 and 2) as ready-made fixtures.

These small hand-specified topologies are used throughout the paper to
motivate and illustrate the pipeline colour schedule, and by Tables II-IV to
walk through the time counter ``M``.  The adjacency below is reconstructed
from every concrete statement in the paper text (which node sets each relay
reaches in Tables II/III, the interference points called out in Section II,
the hop distances in Figure 1(a)); positions are chosen so the quadrant
structure reproduces the E-model behaviour described in Section IV-E (node 1
holds the largest estimate among the source's relay candidates).

Reconstruction notes (Figure 1)
-------------------------------
* ``N(s) = {0, 1, 2}`` and all three candidates conflict pairwise at node 3.
* Selecting node 0 first covers ``{3, 5, 6, 7}`` and leaves ``{4, 8, 9, 10}``
  with no one-step completion (the relays reaching 8 and 10 conflict at 4),
  for a total of 4 rounds — the paper's Figure 1(b).
* Selecting node 1 first covers ``{3, 4, 10}``; nodes 0 and 4 then relay
  concurrently (interference-free) to finish ``{5, 6, 7, 8, 9}`` in one more
  round, i.e. ``P(A) = 3`` — the paper's Figure 1(c) / Table III headline.
* Nodes 8 and 9 are the farthest from the source (3 hops), matching
  Figure 1(a).
* In the propagation quadrant the edge estimates order as in the paper's
  example (``E(7) = E(8) = E(9) = 0 < E(0), E(4), E(10) < E(1) = 2``); the
  paper labels that quadrant "2" for its drawing orientation, our layout
  propagates towards +x so the same values appear in quadrant 1.

Reconstruction notes (Figure 2 / Tables II and IV)
--------------------------------------------------
* ``N = {1..5}``, source 1, edges 1-2, 1-3, 2-4, 2-5, 3-4; nodes 2 and 3
  conflict at node 4.
* Round-based optimum: 2 rounds (Table II).  Selecting node 3 at round 2
  defers the broadcast to 3 rounds — Figure 2(b) vs 2(c).
* Duty-cycle example (Figure 2(e)/Table IV): with the explicit wake-up
  schedule below and start slot 2, the optimum is ``P(A) = 4`` and choosing
  node 3 at slot 4 instead postpones completion past slot ``r + 3``.
"""

from __future__ import annotations

from repro.dutycycle.schedule import WakeupSchedule
from repro.network.topology import WSNTopology

__all__ = [
    "FIGURE1_SOURCE",
    "FIGURE2_SOURCE",
    "figure1_topology",
    "figure2_topology",
    "figure2_duty_schedule",
    "FIGURE2_DUTY_START",
    "FIGURE2_DUTY_RATE",
]

#: Node id used for the source ``s`` of Figure 1 (the paper labels it "s").
FIGURE1_SOURCE: int = 11

#: Source node of Figure 2 (the paper's ``u1``).
FIGURE2_SOURCE: int = 1

#: Start slot ``t_s`` of the Figure 2(e)/Table IV duty-cycle example.
FIGURE2_DUTY_START: int = 2

#: Cycle rate used in the Figure 2(e)/Table IV example schedule.
FIGURE2_DUTY_RATE: int = 10


_FIGURE1_POSITIONS: dict[int, tuple[float, float]] = {
    FIGURE1_SOURCE: (0.0, 2.0),
    0: (1.0, 2.4),
    1: (1.2, 1.8),
    2: (1.0, 0.6),
    3: (2.4, 2.6),
    4: (3.8, 1.6),
    5: (2.2, 4.4),
    6: (3.4, 3.6),
    7: (1.4, 4.6),
    8: (5.2, 2.2),
    9: (4.8, 3.0),
    10: (3.2, 0.4),
}

_FIGURE1_EDGES: tuple[tuple[int, int], ...] = (
    (FIGURE1_SOURCE, 0),
    (FIGURE1_SOURCE, 1),
    (FIGURE1_SOURCE, 2),
    (0, 3),
    (0, 5),
    (0, 6),
    (0, 7),
    (1, 3),
    (1, 4),
    (1, 10),
    (2, 3),
    (3, 4),
    (3, 6),
    (3, 8),
    (3, 9),
    (4, 8),
    (4, 9),
    (4, 10),
    (5, 6),
    (6, 9),
    (8, 9),
    (8, 10),
)


def figure1_topology() -> WSNTopology:
    """The 12-node motivating example of the paper's Figure 1.

    Returns a topology whose source is :data:`FIGURE1_SOURCE`.  The optimal
    conflict-aware schedule completes in 3 rounds (Table III); the greedy
    "most receivers first" choice (node 0) needs 4 rounds; the BFS
    layer-synchronised baseline needs 5.
    """
    return WSNTopology.from_edges(_FIGURE1_EDGES, _FIGURE1_POSITIONS)


_FIGURE2_POSITIONS: dict[int, tuple[float, float]] = {
    1: (0.0, 1.0),
    2: (1.0, 1.6),
    3: (1.0, 0.4),
    4: (2.0, 1.0),
    5: (2.0, 2.0),
}

_FIGURE2_EDGES: tuple[tuple[int, int], ...] = (
    (1, 2),
    (1, 3),
    (2, 4),
    (2, 5),
    (3, 4),
)


def figure2_topology() -> WSNTopology:
    """The 5-node example of the paper's Figure 2 (source = node 1).

    Nodes 2 and 3 conflict at node 4.  The round-based optimum is
    ``P(A) = 2`` (Table II, selecting node 2 at round 2); selecting node 3
    instead defers completion to round 3 (Figure 2(b)).
    """
    return WSNTopology.from_edges(_FIGURE2_EDGES, _FIGURE2_POSITIONS)


def figure2_duty_schedule() -> WakeupSchedule:
    """The explicit wake-up schedule of the Figure 2(e)/Table IV example.

    Cycle rate ``r = 10``; the source (node 1) wakes at slot 2, nodes 2 and
    3 both wake at slot 4 (and again a cycle later), nodes 4 and 5 later in
    the cycle.  With start slot :data:`FIGURE2_DUTY_START` the optimal
    schedule finishes at slot 4 (``P(A) = 4``): slot 2 source transmits,
    slot 3 idle, slot 4 node 2 relays to {4, 5}.  Deferring to node 3 at
    slot 4 forces a wait for node 2's next cycle, i.e. far beyond slot 4 —
    the ``>> 4`` entry of Table IV.
    """
    explicit = {
        1: [2, 12],
        2: [4, 14],
        3: [4, 14],
        4: [6, 16],
        5: [8, 18],
    }
    return WakeupSchedule.from_explicit(explicit, rate=FIGURE2_DUTY_RATE)
