"""Network-edge (boundary) detection used to seed the E-model.

The paper identifies "the edge of the network" by applying the boundary
construction of Goldenberg et al. [6] starting from any node on the convex
hull [3] of the deployment (Algorithm 2, step 1).  The role of that phase is
only to decide which nodes may seed the quadrant estimates ``E_i`` with zero.

Substitution (documented in DESIGN.md): the original boundary construction
walks the outer face of the UDG with right-hand-rule link traversal.  Here a
node is classified as a boundary node when either

* it is a vertex of the convex hull of the node positions, or
* at least one of its four quadrants contains no neighbour (the exact
  predicate Algorithm 2 uses to zero ``E_i``), or
* it lies on the outer face in the sense that some half-plane through the
  node contains none of its neighbours (an "exposed" node).

These three conditions select the perimeter nodes of a connected UDG
deployment; the only property the downstream E-model relies on is that every
node with an empty quadrant on the perimeter is available as a seed, which
the paper's own step 5 re-establishes for interior local minima anyway.
"""

from __future__ import annotations

import math

from repro.network.geometry import convex_hull
from repro.network.quadrant import QUADRANTS, quadrant_neighbors
from repro.network.topology import WSNTopology

__all__ = ["hull_nodes", "boundary_nodes", "is_exposed"]


def hull_nodes(topology: WSNTopology) -> frozenset[int]:
    """Node ids whose positions are vertices of the deployment's convex hull."""
    if topology.num_nodes == 0:
        return frozenset()
    hull_points = set(convex_hull([topology.position(u) for u in topology.node_ids]))
    return frozenset(
        u for u in topology.node_ids if topology.position(u) in hull_points
    )


def is_exposed(topology: WSNTopology, node_id: int, *, samples: int = 36) -> bool:
    """True when some half-plane through ``node_id`` contains no neighbour.

    A node strictly inside a well-covered region has neighbours all around
    it, so every half-plane through it contains at least one neighbour; a
    perimeter node has an outward-facing empty half-plane.  ``samples``
    candidate directions are tested (sufficient for UDG neighbourhood sizes
    in the paper's densities).
    """
    neighbours = topology.neighbors(node_id)
    if not neighbours:
        return True
    origin = topology.position(node_id)
    angles = []
    for v in neighbours:
        pos = topology.position(v)
        angles.append(math.atan2(pos[1] - origin[1], pos[0] - origin[0]))
    angles.sort()
    # The node is exposed iff the largest angular gap between consecutive
    # neighbour directions exceeds pi (an empty half-plane exists).
    largest_gap = 0.0
    for index in range(len(angles)):
        nxt = angles[(index + 1) % len(angles)]
        gap = nxt - angles[index]
        if index == len(angles) - 1:
            gap += 2 * math.pi
        largest_gap = max(largest_gap, gap)
    del samples  # retained for API compatibility; the gap test is exact.
    return largest_gap > math.pi


def boundary_nodes(topology: WSNTopology) -> frozenset[int]:
    """The set of network-edge nodes (see module docstring for the criteria)."""
    result: set[int] = set(hull_nodes(topology))
    for u in topology.node_ids:
        if u in result:
            continue
        if any(not quadrant_neighbors(topology, u, q) for q in QUADRANTS):
            result.add(u)
            continue
        if is_exposed(topology, u):
            result.add(u)
    return frozenset(result)
