"""Quadrant partition ``Q_i(u)`` used by the E-model (Section IV-E).

The paper's lightweight estimation attaches a 4-tuple ``E_1(u)..E_4(u)`` to
every node, one entry per quadrant with ``u`` as the origin.  The partition
convention used here is the usual counter-clockwise quadrant numbering with
half-open boundaries so that every neighbour falls in exactly one quadrant:

* ``Q_1(u)``: ``dx > 0  and dy >= 0``   (east to north, excluding north)
* ``Q_2(u)``: ``dx <= 0 and dy > 0``    (north to west, excluding west)
* ``Q_3(u)``: ``dx < 0  and dy <= 0``   (west to south, excluding south)
* ``Q_4(u)``: ``dx >= 0 and dy < 0``    (south to east, excluding east)

A node exactly at ``u``'s position would not belong to any quadrant; the
deployment generator guarantees distinct positions and the example graphs are
constructed accordingly, so this case is rejected loudly.
"""

from __future__ import annotations

from typing import Iterable

from repro.network.topology import WSNTopology

__all__ = ["QUADRANTS", "quadrant_index", "quadrant_neighbors", "quadrant_partition"]

#: The four quadrant labels, in the order used by the 4-tuple ``E``.
QUADRANTS: tuple[int, int, int, int] = (1, 2, 3, 4)


def quadrant_index(origin: tuple[float, float], point: tuple[float, float]) -> int:
    """Return the quadrant (1-4) of ``point`` relative to ``origin``.

    Raises
    ------
    ValueError
        If ``point`` coincides with ``origin`` (no quadrant is defined).
    """
    dx = point[0] - origin[0]
    dy = point[1] - origin[1]
    if dx == 0.0 and dy == 0.0:
        raise ValueError("point coincides with origin; quadrant undefined")
    if dx > 0 and dy >= 0:
        return 1
    if dx <= 0 and dy > 0:
        return 2
    if dx < 0 and dy <= 0:
        return 3
    return 4


def quadrant_neighbors(
    topology: WSNTopology, node_id: int, quadrant: int
) -> frozenset[int]:
    """``N(u) ∩ Q_i(u)``: neighbours of ``node_id`` lying in ``quadrant``."""
    if quadrant not in QUADRANTS:
        raise ValueError(f"quadrant must be one of {QUADRANTS}, got {quadrant}")
    origin = topology.position(node_id)
    return frozenset(
        v
        for v in topology.neighbors(node_id)
        if quadrant_index(origin, topology.position(v)) == quadrant
    )


def quadrant_partition(
    topology: WSNTopology, node_id: int, candidates: Iterable[int] | None = None
) -> dict[int, frozenset[int]]:
    """Partition ``candidates`` (default: all neighbours) into the 4 quadrants."""
    origin = topology.position(node_id)
    pool = topology.neighbors(node_id) if candidates is None else candidates
    buckets: dict[int, set[int]] = {q: set() for q in QUADRANTS}
    for v in pool:
        buckets[quadrant_index(origin, topology.position(v))].add(v)
    return {q: frozenset(members) for q, members in buckets.items()}
