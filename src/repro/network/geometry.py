"""Planar geometry helpers: distances and a from-scratch convex hull.

The paper identifies the *edge of the network* by starting the boundary
construction of [6] from any node located on the convex hull [3] of the
deployment.  The hull is implemented here directly (Andrew's monotone chain)
instead of pulling in scipy's Qhull wrapper, so the network substrate remains
dependency-light and the algorithm is easy to audit.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["euclidean_distance", "cross", "convex_hull", "pairwise_distances"]

Point = tuple[float, float]


def euclidean_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Return the Euclidean distance between two 2-D points."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def cross(o: Sequence[float], a: Sequence[float], b: Sequence[float]) -> float:
    """2-D cross product of vectors OA and OB.

    Positive when O->A->B makes a counter-clockwise turn, negative for a
    clockwise turn, and zero when the three points are collinear.
    """
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def convex_hull(points: Sequence[Point]) -> list[Point]:
    """Return the convex hull of ``points`` in counter-clockwise order.

    Andrew's monotone chain algorithm, O(n log n).  Collinear points on the
    hull boundary are *excluded* (only extreme vertices are returned), which
    matches the usual definition of hull vertices.  Duplicate input points
    are tolerated.

    Returns the input (deduplicated, sorted) when fewer than three distinct
    points exist.
    """
    unique = sorted(set((float(x), float(y)) for x, y in points))
    if len(unique) <= 2:
        return unique

    lower: list[Point] = []
    for point in unique:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], point) <= 0:
            lower.pop()
        lower.append(point)

    upper: list[Point] = []
    for point in reversed(unique):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], point) <= 0:
            upper.pop()
        upper.append(point)

    # The last point of each list is the first point of the other list.
    return lower[:-1] + upper[:-1]


def pairwise_distances(positions: np.ndarray) -> np.ndarray:
    """Return the dense (n, n) Euclidean distance matrix for 2-D positions.

    Vectorised with broadcasting; used by the UDG construction, which only
    needs a boolean threshold on this matrix.  For the network sizes the
    paper evaluates (<= 300 nodes) the dense matrix is far cheaper than any
    spatial index.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(
            f"positions must have shape (n, 2), got {positions.shape!r}"
        )
    deltas = positions[:, None, :] - positions[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", deltas, deltas))
