"""Dense numpy bitset view of a topology (the vectorized backend's substrate).

The reference implementation represents node sets as Python ``frozenset``
objects and arbitrary-precision integer bitmasks.  That is the right
representation for the schedulers (which manipulate small frontier sets),
but the *engine-side* work — interference checking, receiver computation,
coverage replay, BFS bounds — touches whole-network sets every round/slot
and pays Python-loop costs proportional to ``n`` per operation.

:class:`BitsetTopology` re-expresses the same data as numpy arrays:

* ``adjacency`` — an ``(n, n)`` boolean matrix (``adjacency[i, j]`` iff the
  ``i``-th and ``j``-th node of ``node_ids`` are neighbours);
* node sets — boolean vectors of length ``n``;

so the interference predicates of :mod:`repro.network.interference` become
matrix expressions:

* receivers of a transmitter set ``T``:  ``adjacency[T].any(axis=0) & ~covered``;
* conflict existence: some uncovered node hears two or more transmitters,
  i.e. ``(adjacency[T].sum(axis=0) >= 2)`` restricted to ``~covered`` —
  which is *equivalent* to the paper's pairwise definition (a node hearing
  ``>= 2`` transmitters is a common uncovered neighbour of some pair);
* conflicting pairs (diagnostics): the Gram matrix
  ``A @ A.T`` of ``A = adjacency[T][:, ~covered]`` counts common uncovered
  neighbours per pair.

Views are cached per topology (weakly, so dropping the topology frees the
``n x n`` matrix): construction is ``O(n + m)`` and every simulated policy
and repetition over the same deployment reuses it.
"""

from __future__ import annotations

import weakref
from typing import Iterable, Sequence

import numpy as np

from repro.network.topology import WSNTopology

__all__ = [
    "BitsetTopology",
    "bitset_view",
    "stacked_adjacency",
    "stacked_hear_counts",
    "stacked_hear_counts_at",
    "stacked_receivers",
]


class BitsetTopology:
    """Array view of a :class:`~repro.network.topology.WSNTopology`.

    The view is read-only companion data: it never mutates the topology and
    all conversions round-trip exactly (row ``i`` corresponds to
    ``topology.node_ids[i]``; node ids are stored in ascending order, so row
    order coincides with node-id order).
    """

    __slots__ = (
        "_topology_ref",
        "node_ids",
        "num_nodes",
        "adjacency",
        "adjacency_u8",
        "adjacency_f32",
        "degrees",
        "id_lookup",
        "_index",
        "_distance_cache",
        "_ecc_cache",
        "_max_degree",
        "__weakref__",
    )

    def __init__(self, topology: WSNTopology) -> None:
        ids = topology.node_ids
        n = len(ids)
        # Weak back-reference: views are cached per topology in a
        # WeakKeyDictionary, so a strong reference here would pin the key
        # forever and leak every cached view.
        self._topology_ref = weakref.ref(topology)
        self.num_nodes = n
        self.node_ids = np.asarray(ids, dtype=np.int64)
        self._index = {u: i for i, u in enumerate(ids)}
        adjacency = np.zeros((n, n), dtype=bool)
        edge_list = list(topology.edges())
        if edge_list:
            edges = np.asarray(
                [(self._index[u], self._index[v]) for u, v in edge_list],
                dtype=np.int64,
            )
            adjacency[edges[:, 0], edges[:, 1]] = True
            adjacency[edges[:, 1], edges[:, 0]] = True
        self.adjacency = adjacency
        self.adjacency_u8 = adjacency.astype(np.uint8)
        # float32 copy for BLAS matmuls (exact for counts up to 2**24,
        # far beyond any node degree).
        self.adjacency_f32 = adjacency.astype(np.float32)
        self.degrees = adjacency.sum(axis=1)
        # Dense id -> row lookup table (node ids are small non-negative ints
        # in every supported construction path); -1 marks unknown ids.
        self.id_lookup: np.ndarray | None = None
        if n and int(self.node_ids.min(initial=0)) >= 0:
            max_id = int(self.node_ids.max(initial=0))
            if max_id <= 4 * n + 1024:
                lookup = np.full(max_id + 1, -1, dtype=np.int64)
                lookup[self.node_ids] = np.arange(n, dtype=np.int64)
                self.id_lookup = lookup
        self._distance_cache: dict[int, np.ndarray] = {}
        self._ecc_cache: dict[int, int] = {}
        self._max_degree: int | None = None

    @property
    def topology(self) -> WSNTopology:
        """The topology this view was built from (alive while callers hold it)."""
        topology = self._topology_ref()
        if topology is None:  # pragma: no cover - requires racing the GC
            raise ReferenceError("the topology behind this view was garbage-collected")
        return topology

    # ------------------------------------------------------------------
    # Conversions between frozensets and array representations
    # ------------------------------------------------------------------
    def index_of(self, node_id: int) -> int:
        """Row index of ``node_id`` (raises ``KeyError`` for unknown nodes)."""
        return self._index[node_id]

    def indices(self, nodes: Iterable[int]) -> np.ndarray:
        """Sorted row indices of ``nodes`` (ascending, i.e. node-id order)."""
        lookup = self.id_lookup
        if lookup is not None and isinstance(nodes, (set, frozenset)) and len(nodes) > 16:
            # Large sets: one plain fromiter plus a table gather beats a
            # per-element dict lookup.  KeyError parity for unknown ids.
            ids = np.fromiter(nodes, dtype=np.int64, count=len(nodes))
            if ids.size and 0 <= int(ids.min()) and int(ids.max()) < len(lookup):
                out = lookup[ids]
                if not (out < 0).any():
                    out.sort()
                    return out
            raise KeyError(next(u for u in nodes if u not in self._index))
        index = self._index
        out = np.fromiter((index[u] for u in nodes), dtype=np.int64)
        out.sort()
        return out

    def bool_from_nodes(self, nodes: Iterable[int]) -> np.ndarray:
        """Boolean membership vector of ``nodes``."""
        mask = np.zeros(self.num_nodes, dtype=bool)
        index = self._index
        for u in nodes:
            mask[index[u]] = True
        return mask

    def nodes_from_bool(self, mask: np.ndarray) -> frozenset[int]:
        """Convert a boolean membership vector back to node ids."""
        # tolist() yields Python ints in one C pass — the per-element
        # int() loop dominated the lossy fast path at 500 nodes.
        return frozenset(self.node_ids[mask].tolist())

    # ------------------------------------------------------------------
    # Vectorized interference kernels
    # ------------------------------------------------------------------
    def receivers_bool(self, tx_idx: np.ndarray, covered_bool: np.ndarray) -> np.ndarray:
        """Uncovered nodes reached by the transmitter rows ``tx_idx``.

        The array analogue of :func:`repro.network.interference.receivers_of`.
        """
        if len(tx_idx) == 0:
            return np.zeros(self.num_nodes, dtype=bool)
        return self.adjacency[tx_idx].any(axis=0) & ~covered_bool

    def hear_counts(self, tx_idx: np.ndarray) -> np.ndarray:
        """Per-node count of transmissions heard from the rows ``tx_idx``."""
        if len(tx_idx) == 0:
            return np.zeros(self.num_nodes, dtype=np.int64)
        return self.adjacency_u8[tx_idx].sum(axis=0, dtype=np.int64)

    def has_conflict(self, tx_idx: np.ndarray, covered_bool: np.ndarray) -> bool:
        """True iff some pair of transmitters shares an uncovered neighbour.

        Equivalent to ``bool(conflicting_pairs(...))`` without materialising
        the pairs: a conflict exists iff an uncovered node hears >= 2 of the
        transmitters.
        """
        if len(tx_idx) < 2:
            return False
        counts = self.hear_counts(tx_idx)
        return bool(np.any((counts >= 2) & ~covered_bool))

    def conflicting_pairs(
        self, tx_idx: np.ndarray, covered_bool: np.ndarray
    ) -> list[tuple[int, int]]:
        """Every conflicting transmitter pair as node ids, ``(smaller, larger)``.

        Matches :func:`repro.network.interference.conflicting_pairs` exactly
        (including ordering) — ``tx_idx`` must be sorted ascending, which
        :meth:`indices` guarantees and which coincides with node-id order.
        """
        if len(tx_idx) < 2:
            return []
        exposed = self.adjacency_u8[tx_idx][:, ~covered_bool]
        common = exposed @ exposed.T
        rows, cols = np.nonzero(np.triu(common, k=1))
        ids = self.node_ids
        return [
            (int(ids[tx_idx[i]]), int(ids[tx_idx[j]]))
            for i, j in zip(rows.tolist(), cols.tolist())
        ]

    def check_and_receivers(
        self, tx_idx: np.ndarray, covered_bool: np.ndarray
    ) -> tuple[bool, np.ndarray]:
        """Fused conflict test + receiver computation for one advance.

        Returns ``(has_conflict, receivers_bool)`` from a single pass over
        the transmitters' adjacency rows: the hear-count vector yields both
        the conflict predicate (some uncovered node hears >= 2) and the
        receivers (uncovered nodes hearing >= 1).
        """
        if len(tx_idx) == 0:
            return False, np.zeros(self.num_nodes, dtype=bool)
        uncovered = ~covered_bool
        if len(tx_idx) == 1:
            return False, self.adjacency[tx_idx[0]] & uncovered
        counts = self.adjacency_u8[tx_idx].sum(axis=0, dtype=np.int64)
        conflict = bool(np.any((counts >= 2) & uncovered))
        return conflict, (counts > 0) & uncovered

    def delivery_candidates(
        self, tx_idx: np.ndarray, covered_bool: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Candidate delivery pairs of an advance, in canonical order.

        Returns ``(pair_rows, pair_cols)`` where pair ``i`` is the delivery
        attempt from transmitter ``tx_idx[pair_rows[i]]`` to the uncovered
        neighbour at row ``pair_cols[i]``.  ``np.nonzero`` on the sliced
        adjacency is row-major and ``tx_idx`` is sorted ascending (node-id
        order, as :meth:`indices` guarantees), so the pairs enumerate in
        ascending ``(transmitter id, receiver id)`` order — the canonical
        RNG-draw order of :class:`repro.sim.links.IndependentLossLinks`.
        """
        if len(tx_idx) == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        candidates = self.adjacency[tx_idx] & ~covered_bool
        return np.nonzero(candidates)

    def hears_any(self, tx_idx: np.ndarray) -> np.ndarray:
        """Boolean vector of nodes in range of >= 1 of the rows ``tx_idx``.

        The multi-frontier kernel of the vectorized multi-source engine:
        cross-message slot contention reduces to "does an intended receiver
        of one message hear a transmitter of another", which is one row
        slice + OR-reduction per candidate advance.
        """
        if len(tx_idx) == 0:
            return np.zeros(self.num_nodes, dtype=bool)
        return self.adjacency[tx_idx].any(axis=0)

    def collision_victims_bool(
        self, tx_idx: np.ndarray, covered_bool: np.ndarray
    ) -> np.ndarray:
        """Uncovered nodes hearing two or more of the transmitters.

        The array analogue of
        :func:`repro.network.interference.collision_victims`.
        """
        return (self.hear_counts(tx_idx) >= 2) & ~covered_bool

    # ------------------------------------------------------------------
    # Vectorized graph-wide queries
    # ------------------------------------------------------------------
    def hop_distances_bool(self, source: int) -> np.ndarray:
        """BFS hop distances from ``source`` (``-1`` for unreachable nodes).

        The wavefront propagation runs one matrix slice per BFS layer
        instead of a Python queue: frontier ``F`` expands to
        ``adjacency[F].any(axis=0) & unvisited``.  Cached per source.
        """
        idx = self._index[source]
        cached = self._distance_cache.get(idx)
        if cached is not None:
            return cached
        distances = np.full(self.num_nodes, -1, dtype=np.int64)
        frontier = np.zeros(self.num_nodes, dtype=bool)
        frontier[idx] = True
        distances[idx] = 0
        depth = 0
        while frontier.any():
            depth += 1
            reached = self.adjacency[frontier].any(axis=0) & (distances < 0)
            distances[reached] = depth
            frontier = reached
        self._distance_cache[idx] = distances
        return distances

    def eccentricity(self, source: int) -> int:
        """Hop distance to the farthest node, mirroring the reference method.

        Raises the same :class:`ValueError` as
        :meth:`WSNTopology.eccentricity` when the network is disconnected
        from ``source``.
        """
        cached = self._ecc_cache.get(source)
        if cached is not None:
            return cached
        distances = self.hop_distances_bool(source)
        unreachable = int(np.count_nonzero(distances < 0))
        if unreachable:
            raise ValueError(
                f"network is disconnected: {unreachable} nodes unreachable from {source}"
            )
        ecc = int(distances.max(initial=0))
        self._ecc_cache[source] = ecc
        return ecc

    def max_degree(self) -> int:
        """The maximum node degree (precomputed)."""
        if self._max_degree is None:
            self._max_degree = int(self.degrees.max(initial=0))
        return self._max_degree


_VIEW_CACHE: "weakref.WeakKeyDictionary[WSNTopology, BitsetTopology]" = (
    weakref.WeakKeyDictionary()
)


def bitset_view(topology: WSNTopology) -> BitsetTopology:
    """Return the (cached) :class:`BitsetTopology` view of ``topology``."""
    view = _VIEW_CACHE.get(topology)
    if view is None:
        view = BitsetTopology(topology)
        _VIEW_CACHE[topology] = view
    return view


# ----------------------------------------------------------------------
# Stacked-mask kernels (the batched executor's substrate)
# ----------------------------------------------------------------------
def stacked_adjacency(
    views: Sequence[BitsetTopology], dtype: type = np.uint8
) -> np.ndarray:
    """Stack same-size views into one ``(L, n, n)`` adjacency tensor.

    Lane ``l`` of the stack is ``views[l].adjacency_u8`` (or the cached
    float32 copy for ``dtype=np.float32`` — the batched executor stacks
    float32 so the per-advance gather feeds BLAS without an ``astype`` per
    kernel call); the batched executor (:mod:`repro.sim.batched`) runs
    every per-advance interference kernel of all lanes through a single
    gather over this tensor instead of one matrix slice per lane.  The
    views may come from *different* topologies — a sweep stripe stacks
    independent deployments — but must share the node count.
    """
    if not views:
        return np.zeros((0, 0, 0), dtype=dtype)
    sizes = {view.num_nodes for view in views}
    if len(sizes) > 1:
        raise ValueError(
            f"cannot stack views with different node counts: {sorted(sizes)}"
        )
    if dtype is np.float32:
        return np.stack([view.adjacency_f32 for view in views])
    return np.stack([view.adjacency_u8 for view in views])


# Above this many lanes the dense lane-selector matmul (O(L * R * n) flops)
# loses to the O(R * n) segment-sum; measured crossover is ~128 lanes for
# paper-grid row counts.
_MATMUL_LANE_LIMIT = 128

# Shared, growing arange so the per-advance kernel never re-allocates an
# index vector for the selector scatter.
_ARANGE = np.arange(256)


def _arange(size: int) -> np.ndarray:
    global _ARANGE
    if size > len(_ARANGE):
        _ARANGE = np.arange(2 * size)
    return _ARANGE[:size]


def stacked_hear_counts_at(
    adjacency_stack: np.ndarray, lane_idx: np.ndarray, tx_idx: np.ndarray
) -> np.ndarray:
    """Per-lane hear counts from flat transmitter coordinates, as ``(L, n)``.

    ``(lane_idx[k], tx_idx[k])`` names one transmitter; lane ``l``'s row of
    the result equals ``views[l].hear_counts(...)`` over its transmitters.
    Like the per-lane kernel (:meth:`BitsetTopology.check_and_receivers`),
    the cost is proportional to the *transmitters*, not the full
    ``L * n^2`` tensor: one fancy-index gathers every transmitter's
    adjacency row across all lanes at once, then a single reduction folds
    the rows into per-lane counts — a lane-selector matmul (BLAS sgemm,
    order-free) for small batches, a ``np.add.reduceat`` segment-sum
    (which needs ``lane_idx`` sorted, as row-major callers produce
    naturally) beyond :data:`_MATMUL_LANE_LIMIT` lanes.  The conversion
    work is proportional to the gathered transmitters, never the full
    tensor, and the returned counts are float32 holding *exact* small
    integers (bounded by ``n``, far inside float32's integer range) — the
    hot path stays comparison-safe without paying a counts-sized int
    conversion per advance.  :func:`stacked_hear_counts` wraps this with
    an int64 result for mask-shaped callers.
    """
    num_lanes = adjacency_stack.shape[0]
    num_rows = len(lane_idx)
    rows = adjacency_stack[lane_idx, tx_idx]
    if rows.dtype != np.float32:
        rows = rows.astype(np.float32)
    if num_lanes <= _MATMUL_LANE_LIMIT:
        selector = np.zeros((num_lanes, num_rows), dtype=np.float32)
        selector[lane_idx, _arange(num_rows)] = 1.0
        return selector @ rows
    counts = np.zeros((num_lanes, adjacency_stack.shape[1]), dtype=np.float32)
    boundary = np.empty(num_rows, dtype=bool)
    boundary[0] = True
    np.not_equal(lane_idx[1:], lane_idx[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    counts[lane_idx[starts]] = np.add.reduceat(rows, starts, axis=0)
    return counts


def stacked_hear_counts(adjacency_stack: np.ndarray, tx_mask: np.ndarray) -> np.ndarray:
    """Per-lane hear counts for stacked transmitter masks, as ``(L, n)``.

    Mask-shaped front end of :func:`stacked_hear_counts_at`: lane ``l``'s
    row equals ``views[l].hear_counts(tx_idx_l)`` for the transmitters
    flagged in ``tx_mask[l]``, which may be boolean or uint8, and counts
    come back int64.  Callers that already hold flat transmitter
    coordinates (the batched executor does) should call the ``_at`` form
    directly and skip the mask scan and the int conversion.
    """
    num_lanes, num_nodes = tx_mask.shape
    lane_idx, tx_idx = np.nonzero(tx_mask)
    if len(lane_idx) == 0:
        return np.zeros((num_lanes, num_nodes), dtype=np.int64)
    counts = stacked_hear_counts_at(adjacency_stack, lane_idx, tx_idx)
    return counts.astype(np.int64)


def stacked_receivers(
    counts: np.ndarray, covered_stack: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Batched twin of :meth:`BitsetTopology.check_and_receivers`.

    From per-lane hear counts (:func:`stacked_hear_counts`) and the stacked
    coverage, returns ``(conflicts, receivers)``: lane ``l`` has a conflict
    iff some uncovered node hears two or more of its transmitters, and its
    receivers are the uncovered nodes hearing at least one — exactly the
    per-lane kernel's booleans, computed for all lanes in three array ops
    (zero covered nodes' counts, then one row-max and one comparison).
    """
    masked = np.where(covered_stack, 0, counts)
    return masked.max(axis=1) >= 2, masked > 0
