"""Deployment generation: the paper's uniform generator and its data model.

Section V-A: "50~300 nodes, with a communication radius of 10 feet, are
deployed uniformly to cover an interest area of 50 x 50 Sq. Ft., creating
different densities (nodes per Sq. Ft.) ranging from 0.02 to 0.12.  The
source is randomly selected with a distance of 5~8 hops to the farthest
node."

:func:`deploy_uniform` reproduces this generator: it samples node positions
uniformly at random in the square, rejects disconnected deployments, and
picks a source node whose eccentricity falls in the requested hop range
(retrying with fresh positions when no such source exists).

This module also defines the two records shared by every workload:

* :class:`DeploymentConfig` — the geometry knobs (node count, area side,
  communication radius, source-eccentricity window, retry budget); and
* :class:`Deployment` — a generated topology plus its selected source.

The :mod:`repro.scenarios` registry builds non-uniform workloads (clustered
hotspots, corridors, rings, grids with holes, k-nearest-neighbour graphs,
...) on top of exactly these records, so schedulers and simulators never
see anything but a ``Deployment`` regardless of which generator produced
it.  Determinism contract: for a fixed seed every generator in this family
returns bit-identical positions, adjacency and source on every call and in
every process — the parallel sweep runner depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.topology import WSNTopology
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive, require

__all__ = [
    "Deployment",
    "DeploymentConfig",
    "DeploymentError",
    "deploy_uniform",
    "grid_deployment",
]


class DeploymentError(RuntimeError):
    """Raised when no deployment satisfying the constraints can be generated."""


@dataclass(frozen=True)
class DeploymentConfig:
    """Parameters of the paper's deployment generator.

    Attributes
    ----------
    num_nodes:
        Number of sensor nodes to place.
    area_side:
        Side length of the square deployment area (feet). Paper: 50.
    radius:
        Communication radius (feet). Paper: 10.
    source_min_ecc, source_max_ecc:
        Acceptable range for the hop distance from the source to the
        farthest node (the paper samples sources with eccentricity 5-8).
        Set ``source_min_ecc=0`` and ``source_max_ecc=None`` to accept any
        source.
    max_attempts:
        Number of full re-deployments attempted before giving up.
    """

    num_nodes: int
    area_side: float = 50.0
    radius: float = 10.0
    source_min_ecc: int = 5
    source_max_ecc: int | None = 8
    max_attempts: int = 200

    def __post_init__(self) -> None:
        require(self.num_nodes >= 2, f"num_nodes must be >= 2, got {self.num_nodes}")
        check_positive("area_side", self.area_side)
        check_positive("radius", self.radius)
        require(self.source_min_ecc >= 0, "source_min_ecc must be >= 0")
        if self.source_max_ecc is not None:
            require(
                self.source_max_ecc >= self.source_min_ecc,
                "source_max_ecc must be >= source_min_ecc",
            )
        require(self.max_attempts >= 1, "max_attempts must be >= 1")

    @property
    def density(self) -> float:
        """Nodes per square foot, the x-axis of the paper's figures."""
        return self.num_nodes / (self.area_side * self.area_side)


@dataclass
class Deployment:
    """A generated deployment: the topology plus the selected source.

    ``scenario`` names the generator that produced it (``"uniform"`` for
    the paper's generator, otherwise a :mod:`repro.scenarios` registry key).
    """

    topology: WSNTopology
    source: int
    config: DeploymentConfig
    attempts: int = field(default=1)
    scenario: str = "uniform"

    @property
    def eccentricity(self) -> int:
        """Hop distance from the source to the farthest node (``d``)."""
        return self.topology.eccentricity(self.source)


def _candidate_sources(topology: WSNTopology, config: DeploymentConfig) -> list[int]:
    """Node ids whose eccentricity lies in the configured range."""
    candidates = []
    for u in topology.node_ids:
        ecc = topology.eccentricity(u)
        if ecc < config.source_min_ecc:
            continue
        if config.source_max_ecc is not None and ecc > config.source_max_ecc:
            continue
        candidates.append(u)
    return candidates


def deploy_uniform(
    num_nodes: int | None = None,
    *,
    config: DeploymentConfig | None = None,
    seed: int | None = None,
    return_deployment: bool = False,
) -> tuple[WSNTopology, int] | Deployment:
    """Generate a connected uniform deployment with a valid source.

    Parameters
    ----------
    num_nodes:
        Shorthand for ``DeploymentConfig(num_nodes=...)`` with paper defaults.
    config:
        Full deployment configuration (overrides ``num_nodes``).
    seed:
        Seed for reproducibility.
    return_deployment:
        When True, return the richer :class:`Deployment` record; otherwise
        return the ``(topology, source)`` pair.

    Raises
    ------
    DeploymentError
        If no connected deployment with an eligible source is found within
        ``config.max_attempts`` attempts.
    """
    if config is None:
        if num_nodes is None:
            raise ValueError("either num_nodes or config must be provided")
        config = DeploymentConfig(num_nodes=num_nodes)
    rng = make_rng(seed)

    last_error = "no attempt made"
    for attempt in range(1, config.max_attempts + 1):
        positions = rng.uniform(0.0, config.area_side, size=(config.num_nodes, 2))
        topology = WSNTopology.from_positions(positions, radius=config.radius)
        if not topology.is_connected():
            last_error = "deployment disconnected"
            continue
        candidates = _candidate_sources(topology, config)
        if not candidates:
            last_error = (
                "no node with eccentricity in "
                f"[{config.source_min_ecc}, {config.source_max_ecc}]"
            )
            continue
        source = int(candidates[int(rng.integers(len(candidates)))])
        deployment = Deployment(
            topology=topology, source=source, config=config, attempts=attempt
        )
        if return_deployment:
            return deployment
        return topology, source

    raise DeploymentError(
        f"failed to generate a deployment after {config.max_attempts} attempts "
        f"({last_error}); consider relaxing the eccentricity range or density"
    )


def grid_deployment(
    rows: int,
    cols: int,
    *,
    spacing: float = 1.0,
    radius: float = 1.5,
    jitter: float = 0.0,
    seed: int | None = None,
) -> WSNTopology:
    """A regular grid deployment (used by tests and ablation benchmarks).

    With ``radius`` between ``spacing`` and ``spacing * sqrt(2)`` the grid is
    4-connected; above ``spacing * sqrt(2)`` it becomes 8-connected.  A small
    positional ``jitter`` breaks ties in the quadrant partition.
    """
    require(rows >= 1 and cols >= 1, "rows and cols must be >= 1")
    check_positive("spacing", spacing)
    check_positive("radius", radius)
    rng = make_rng(seed)
    positions = []
    for r in range(rows):
        for c in range(cols):
            dx = dy = 0.0
            if jitter > 0:
                dx, dy = rng.uniform(-jitter, jitter, size=2)
            positions.append((c * spacing + dx, r * spacing + dy))
    return WSNTopology.from_positions(np.asarray(positions), radius=radius)
