"""Minimum Latency Broadcasting with Conflict Awareness in WSNs (ICPP 2012).

This package reproduces the system described in

    Z. Jiang, D. Wu, M. Guo, J. Wu, R. Kline, X. Wang,
    "Minimum Latency Broadcasting with Conflict Awareness in Wireless
    Sensor Networks", Proc. 41st International Conference on Parallel
    Processing (ICPP), 2012, pp. 490-499.

The public API is re-exported here so that a downstream user can write::

    from repro import (
        WSNTopology, deploy_uniform, WakeupSchedule,
        GreedyOptPolicy, EModelPolicy, OptPolicy,
        run_broadcast, Approx26Policy, Approx17Policy,
    )

    topo, source = deploy_uniform(num_nodes=150, seed=7)
    result = run_broadcast(topo, source, EModelPolicy(topo))
    print(result.latency)

Sub-packages
------------
``repro.network``
    Unit-disc-graph WSN topologies, deployments, quadrants, boundary
    detection and the paper's example graphs (Figures 1 and 2).
``repro.dutycycle``
    Asynchronous duty-cycle substrate: pseudo-random wake-up schedules and
    cycle-waiting-time (CWT) queries.
``repro.core``
    The paper's contribution: the extended greedy colour scheme
    (Algorithm 1), the time counter ``M`` (Eqs. 4-8), the lightweight
    4-tuple estimation ``E`` (Algorithm 2, Eqs. 9-11) and the OPT /
    G-OPT / E-model scheduling policies (Algorithm 3).
``repro.baselines``
    Re-implementations of the hop-distance based baselines the paper
    compares against (26-approximation, 17-approximation) plus flooding.
``repro.sim``
    Round-based and slot-based broadcast simulators, trace recording,
    schedule validation and metrics.
``repro.solvers``
    The solver-tier catalog: exact minimum-latency schedulers
    (branch-and-bound, ILP-accelerated) behind the same policy interface,
    plus the registry (:data:`repro.solvers.SOLVER_TIERS`) grading every
    scheduler by its optimality guarantee.
``repro.experiments``
    The evaluation harness regenerating every figure and table of the
    paper's Section V, plus the approximation-ratio study built on the
    solver tiers.
"""

from repro.core.advance import Advance, BroadcastState
from repro.core.bounds import (
    duty_cycle_17_bound,
    duty_cycle_opt_bound,
    sync_26_bound,
    sync_opt_bound,
)
from repro.core.coloring import ColorScheme, greedy_color_classes
from repro.core.estimation import EdgeEstimate, build_edge_estimate
from repro.core.localized import LocalizedEModelPolicy
from repro.core.policies import (
    EModelPolicy,
    GreedyOptPolicy,
    OptPolicy,
    SchedulingPolicy,
)
from repro.core.time_counter import SearchConfig, TimeCounter
from repro.baselines.approx17 import Approx17Policy
from repro.baselines.approx26 import Approx26Policy
from repro.baselines.flooding import FloodingPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.network.graphs import figure1_topology, figure2_topology
from repro.network.sources import select_sources
from repro.network.topology import Node, WSNTopology
from repro.sim.broadcast import run_broadcast
from repro.sim.energy import EnergyModel, EnergyReport, energy_of_broadcast
from repro.sim.links import IndependentLossLinks, LinkModel, ReliableLinks
from repro.sim.metrics import BroadcastMetrics, MultiBroadcastMetrics
from repro.sim.trace import BroadcastResult, MultiBroadcastResult
from repro.sim.unreliable import run_lossy_broadcast
from repro.solvers import (
    SOLVER_TIERS,
    BranchAndBoundPolicy,
    ExactPolicy,
    SolverPlan,
    SolverTier,
    solve_broadcast,
    solver_names,
)

__version__ = "1.0.0"

__all__ = [
    "Advance",
    "Approx17Policy",
    "Approx26Policy",
    "BranchAndBoundPolicy",
    "BroadcastMetrics",
    "BroadcastResult",
    "BroadcastState",
    "ColorScheme",
    "DeploymentConfig",
    "EModelPolicy",
    "EdgeEstimate",
    "EnergyModel",
    "EnergyReport",
    "ExactPolicy",
    "FloodingPolicy",
    "GreedyOptPolicy",
    "IndependentLossLinks",
    "LinkModel",
    "LocalizedEModelPolicy",
    "MultiBroadcastMetrics",
    "MultiBroadcastResult",
    "Node",
    "ReliableLinks",
    "OptPolicy",
    "SOLVER_TIERS",
    "SchedulingPolicy",
    "SearchConfig",
    "SolverPlan",
    "SolverTier",
    "TimeCounter",
    "WakeupSchedule",
    "WSNTopology",
    "build_edge_estimate",
    "deploy_uniform",
    "duty_cycle_17_bound",
    "duty_cycle_opt_bound",
    "energy_of_broadcast",
    "figure1_topology",
    "figure2_topology",
    "greedy_color_classes",
    "run_broadcast",
    "run_lossy_broadcast",
    "select_sources",
    "solve_broadcast",
    "solver_names",
    "sync_26_bound",
    "sync_opt_bound",
    "__version__",
]
