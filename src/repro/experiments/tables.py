"""Generators for the paper's worked-example Tables II, III and IV.

The tables in the paper walk through the time counter ``M`` on the example
topologies of Figures 1 and 2, listing for every task ``M(W, t)`` the colour
classes considered and the selected colour.  The generators below replay the
same schedules with the G-OPT policy in exact-search mode and report, per
advance, the number of colours ``λ`` considered, the selected colour and the
resulting broadcasting advance — i.e. the columns of the paper's tables —
together with the headline ``P(A)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.coloring import greedy_color_classes
from repro.core.policies import GreedyOptPolicy
from repro.core.time_counter import SearchConfig
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.graphs import (
    FIGURE1_SOURCE,
    FIGURE2_DUTY_START,
    FIGURE2_SOURCE,
    figure1_topology,
    figure2_duty_schedule,
    figure2_topology,
)
from repro.network.topology import WSNTopology
from repro.sim.broadcast import run_broadcast
from repro.utils.format import format_table

__all__ = ["TableRow", "TableResult", "schedule_walkthrough", "table2", "table3", "table4"]


@dataclass(frozen=True)
class TableRow:
    """One advance of the walkthrough (one row of the paper's tables)."""

    time: int
    covered_before: tuple[int, ...]
    num_colors: int
    selected_color: tuple[int, ...]
    receivers: tuple[int, ...]


@dataclass
class TableResult:
    """A reproduced worked-example table."""

    name: str
    title: str
    rows: list[TableRow] = field(default_factory=list)
    latency: int = 0
    end_time: int = 0
    expected_end_time: int | None = None

    @property
    def matches_paper(self) -> bool:
        """True when the measured ``P(A)`` equals the paper's value."""
        return self.expected_end_time is None or self.end_time == self.expected_end_time

    def to_text(self) -> str:
        """Render the walkthrough as an aligned text table."""
        headers = ["t", "|W|", "lambda", "selected colour", "advance A(W,t)"]
        body = [
            [
                row.time,
                len(row.covered_before),
                row.num_colors,
                "{" + ", ".join(map(str, row.selected_color)) + "}",
                "{" + ", ".join(map(str, row.receivers)) + "}",
            ]
            for row in self.rows
        ]
        expectation = (
            f" (paper: {self.expected_end_time})" if self.expected_end_time else ""
        )
        return (
            f"{self.name}: {self.title}\n"
            f"{format_table(headers, body)}\n"
            f"P(A) = {self.end_time}{expectation}"
        )


def schedule_walkthrough(
    topology: WSNTopology,
    source: int,
    *,
    schedule: WakeupSchedule | None = None,
    start_time: int = 1,
) -> TableResult:
    """Replay an exact G-OPT schedule and record the per-advance decisions."""
    policy = GreedyOptPolicy(search=SearchConfig(mode="exact"))
    result = run_broadcast(
        topology, source, policy, schedule=schedule, start_time=start_time
    )
    rows: list[TableRow] = []
    covered: set[int] = {source}
    for advance in result.advances:
        awake = None
        if schedule is not None:
            awake = schedule.awake_nodes(covered, advance.time)
        num_colors = len(greedy_color_classes(topology, frozenset(covered), awake))
        rows.append(
            TableRow(
                time=advance.time,
                covered_before=tuple(sorted(covered)),
                num_colors=num_colors,
                selected_color=tuple(sorted(advance.color)),
                receivers=tuple(sorted(advance.receivers)),
            )
        )
        covered |= advance.receivers
    return TableResult(
        name="walkthrough",
        title="G-OPT schedule walkthrough",
        rows=rows,
        latency=result.latency,
        end_time=result.end_time,
    )


def table2() -> TableResult:
    """Table II: schedule for Figure 2(a) in the round-based system (P(A) = 2)."""
    walkthrough = schedule_walkthrough(figure2_topology(), FIGURE2_SOURCE, start_time=1)
    walkthrough.name = "Table II"
    walkthrough.title = (
        "Schedule for the sample in Figure 2(a), N = {1..5}, t_s = 1"
    )
    walkthrough.expected_end_time = 2
    return walkthrough


def table3() -> TableResult:
    """Table III: schedule for Figure 1(c) in the round-based system (P(A) = 3)."""
    walkthrough = schedule_walkthrough(figure1_topology(), FIGURE1_SOURCE, start_time=1)
    walkthrough.name = "Table III"
    walkthrough.title = (
        "Schedule for the sample in Figure 1(c), N = {s, 0..10}, t_s = 1"
    )
    walkthrough.expected_end_time = 3
    return walkthrough


def table4() -> TableResult:
    """Table IV: schedule for Figure 2(e) in the duty-cycle system (P(A) = 4)."""
    walkthrough = schedule_walkthrough(
        figure2_topology(),
        FIGURE2_SOURCE,
        schedule=figure2_duty_schedule(),
        start_time=FIGURE2_DUTY_START,
    )
    walkthrough.name = "Table IV"
    walkthrough.title = (
        "Schedule for the sample in Figure 2(e) in the duty-cycle system, t_s = 2"
    )
    walkthrough.expected_end_time = 4
    return walkthrough
