"""Evaluation harness regenerating every table and figure of Section V."""

from repro.experiments.config import (
    PAPER_SWEEP,
    QUICK_SWEEP,
    RATIO_SWEEP,
    ExperimentScale,
    SweepConfig,
    sweep_from_env,
)
from repro.experiments.figures import (
    DEFAULT_RATIO_DUTY_MODELS,
    DEFAULT_RATIO_SCENARIOS,
    DEFAULT_SCENARIO_SET,
    DEFAULT_SOURCE_COUNTS,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure_multisource,
    figure_ratio,
    figure_reliability,
    figure_scenarios,
)
from repro.experiments.runner import RunRecord, SweepResult, run_sweep
from repro.experiments.tables import table2, table3, table4
from repro.experiments.report import multisource_claims, ratio_claims, summary_claims

__all__ = [
    "DEFAULT_RATIO_DUTY_MODELS",
    "DEFAULT_RATIO_SCENARIOS",
    "DEFAULT_SCENARIO_SET",
    "DEFAULT_SOURCE_COUNTS",
    "ExperimentScale",
    "PAPER_SWEEP",
    "QUICK_SWEEP",
    "RATIO_SWEEP",
    "RunRecord",
    "SweepConfig",
    "SweepResult",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure_multisource",
    "figure_ratio",
    "figure_reliability",
    "figure_scenarios",
    "multisource_claims",
    "ratio_claims",
    "run_sweep",
    "summary_claims",
    "sweep_from_env",
    "table2",
    "table3",
    "table4",
]
