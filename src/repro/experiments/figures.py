"""Generators for the paper's Figures 3-7 plus cross-scenario comparisons.

Each generator returns a :class:`FigureResult` holding exactly the series the
paper plots: density (nodes per sq-ft) on the x-axis and the end-to-end
latency ``P(A)`` (rounds for Figure 3, slots for Figures 4-7) on the y-axis,
one series per scheduler or analytical bound.  The benchmark modules under
``benchmarks/`` call these generators and assert the qualitative shape; the
CLI (``python -m repro.experiments``) prints them as text tables / CSV.

Beyond the paper, :func:`figure_scenarios` compares the policies *across
deployment scenarios* (see :mod:`repro.scenarios`): one x position per
scenario, mean latency over the whole sweep per policy.
:func:`figure_reliability` sweeps the §VI loss axis instead: one x position
per loss probability, with a latency series and a retransmission series per
policy.  :func:`figure_multisource` sweeps the concurrent-message count
``k``: one x position per source count, with a makespan-latency series and
a total-energy series per policy (the workload catalog's multi-source
entry — see ``docs/workloads.md``).

:func:`figure_ratio` turns the solver catalog into an empirical
approximation-ratio study: on instances small enough for the exact tier
(:data:`~repro.experiments.config.RATIO_SWEEP`) it divides every policy's
latency by the certified optimum of the *same* deployment across a
scenario x duty-model grid, pairing each observed ratio with its proved
bound (see ``docs/solvers.md``).

Every generator accepts ``store=`` / ``resume=`` and forwards them to
:func:`~repro.experiments.runner.run_sweep`, so figures regenerate from a
populated :class:`~repro.store.ExperimentStore` without re-simulating
(see ``docs/store.md``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.core.bounds import (
    duty_cycle_17_bound,
    duty_cycle_opt_bound,
    sync_opt_bound,
)
from repro.dutycycle.cwt import max_cwt
from repro.experiments.config import RATIO_SWEEP, SweepConfig, sweep_from_env
from repro.experiments.runner import SweepResult, default_policies, run_sweep
from repro.sim.metrics import aggregate_latency
from repro.solvers.registry import SOLVER_TIERS
from repro.store import ExperimentStore
from repro.utils.format import format_series_table, to_csv
from repro.utils.validation import require

__all__ = [
    "FigureResult",
    "DEFAULT_SCENARIO_SET",
    "DEFAULT_LOSS_PROBABILITIES",
    "DEFAULT_SOURCE_COUNTS",
    "DEFAULT_RATIO_SCENARIOS",
    "DEFAULT_RATIO_DUTY_MODELS",
    "RETX_SUFFIX",
    "ENERGY_SUFFIX",
    "BOUND_SUFFIX",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure_scenarios",
    "figure_reliability",
    "figure_multisource",
    "figure_ratio",
]


@dataclass
class FigureResult:
    """One reproduced figure: x values plus one y series per curve.

    ``x_values`` are densities for the paper's figures and scenario names
    for :func:`figure_scenarios` (the text/CSV renderers accept both).
    """

    name: str
    title: str
    x_label: str
    x_values: tuple[float | str, ...]
    series: dict[str, list[float]] = field(default_factory=dict)
    y_label: str = "P(A)"
    sweep: SweepResult | None = None

    def to_text(self) -> str:
        """The figure as an aligned text table (one row per density)."""
        header = f"{self.name}: {self.title}  [y = {self.y_label}]"
        table = format_series_table(self.x_label, list(self.x_values), self.series)
        return f"{header}\n{table}"

    def to_csv(self) -> str:
        """The figure as CSV (columns: x, one per series)."""
        headers = [self.x_label, *self.series.keys()]
        rows = []
        for index, x in enumerate(self.x_values):
            rows.append([x, *(values[index] for values in self.series.values())])
        return to_csv(headers, rows)

    def series_for(self, name: str) -> list[float]:
        """One named series (raises ``KeyError`` with the known names)."""
        try:
            return self.series[name]
        except KeyError:
            raise KeyError(
                f"unknown series {name!r}; available: {sorted(self.series)}"
            ) from None


def _densities(config: SweepConfig) -> tuple[float, ...]:
    return config.densities


def figure3(
    config: SweepConfig | None = None,
    *,
    store: ExperimentStore | None = None,
    resume: bool = True,
) -> FigureResult:
    """Figure 3: ``P(A)`` in the round-based synchronous system.

    Series: 26-approximation, OPT, G-OPT, E-model (simulated) and
    OPT-analysis (the Theorem-1 bound ``d + 2`` averaged over deployments).
    """
    config = config or sweep_from_env()
    sweep = run_sweep(config, system="sync", store=store, resume=resume)
    series = sweep.latency_series(["26-approx", "OPT", "G-OPT", "E-model"])
    series["OPT-analysis"] = [
        sync_opt_bound(round(d)) + 1 for d in sweep.eccentricity_series()
    ]
    return FigureResult(
        name="Figure 3",
        title="End-to-end delay in the round-based synchronous system",
        x_label="density (nodes/sq-ft)",
        x_values=_densities(config),
        series=series,
        y_label="P(A) [rounds]",
        sweep=sweep,
    )


def _duty_experiment(
    config: SweepConfig,
    rate: int,
    name: str,
    title: str,
    store: ExperimentStore | None = None,
    resume: bool = True,
) -> FigureResult:
    sweep = run_sweep(config, system="duty", rate=rate, store=store, resume=resume)
    series = sweep.latency_series(["17-approx", "OPT", "G-OPT", "E-model"])
    return FigureResult(
        name=name,
        title=title,
        x_label="density (nodes/sq-ft)",
        x_values=_densities(config),
        series=series,
        y_label="P(A) [slots]",
        sweep=sweep,
    )


def _duty_bounds(
    config: SweepConfig,
    rate: int,
    name: str,
    title: str,
    sweep: SweepResult | None,
    store: ExperimentStore | None = None,
    resume: bool = True,
) -> FigureResult:
    """Analytical upper bounds (Theorem 1 vs the 17kd baseline bound)."""
    if sweep is None:
        # Only the deployments' eccentricities are needed; running the cheap
        # E-model alone keeps this fast while reusing the same deployments.
        from repro.core.policies import EModelPolicy  # local import to avoid cycle

        sweep = run_sweep(
            config,
            system="duty",
            rate=rate,
            policies={"E-model": EModelPolicy},
            store=store,
            resume=resume,
        )
    eccentricities = sweep.eccentricity_series()
    series = {
        "OPT-analysis (2r(d+2))": [
            float(duty_cycle_opt_bound(rate, round(d))) for d in eccentricities
        ],
        "17-approx bound (17kd)": [
            float(duty_cycle_17_bound(round(d), max_cwt(rate))) for d in eccentricities
        ],
    }
    return FigureResult(
        name=name,
        title=title,
        x_label="density (nodes/sq-ft)",
        x_values=_densities(config),
        series=series,
        y_label="P(A) upper bound [slots]",
        sweep=sweep,
    )


def figure4(
    config: SweepConfig | None = None,
    *,
    store: ExperimentStore | None = None,
    resume: bool = True,
) -> FigureResult:
    """Figure 4: experimental ``P(A)`` in the duty-cycle system, ``r = 10``."""
    config = config or sweep_from_env()
    return _duty_experiment(
        config,
        rate=10,
        name="Figure 4",
        title="End-to-end delay in the duty-cycle system (r = 10)",
        store=store,
        resume=resume,
    )


def figure5(
    config: SweepConfig | None = None,
    sweep: SweepResult | None = None,
    *,
    store: ExperimentStore | None = None,
    resume: bool = True,
) -> FigureResult:
    """Figure 5: analytical ``P(A)`` upper bounds, duty cycle ``r = 10``.

    ``sweep`` may be the result attached to :func:`figure4` to reuse its
    deployments (the bounds only depend on the eccentricities).
    """
    config = config or sweep_from_env()
    return _duty_bounds(
        config,
        rate=10,
        name="Figure 5",
        title="Analytical upper bounds in the duty-cycle system (r = 10)",
        sweep=sweep,
        store=store,
        resume=resume,
    )


def figure6(
    config: SweepConfig | None = None,
    *,
    store: ExperimentStore | None = None,
    resume: bool = True,
) -> FigureResult:
    """Figure 6: experimental ``P(A)`` in the light duty-cycle system, ``r = 50``."""
    config = config or sweep_from_env()
    return _duty_experiment(
        config,
        rate=50,
        name="Figure 6",
        title="End-to-end delay in the light duty-cycle system (r = 50)",
        store=store,
        resume=resume,
    )


def figure7(
    config: SweepConfig | None = None,
    sweep: SweepResult | None = None,
    *,
    store: ExperimentStore | None = None,
    resume: bool = True,
) -> FigureResult:
    """Figure 7: analytical ``P(A)`` upper bounds, duty cycle ``r = 50``."""
    config = config or sweep_from_env()
    return _duty_bounds(
        config,
        rate=50,
        name="Figure 7",
        title="Analytical upper bounds in the light duty-cycle system (r = 50)",
        sweep=sweep,
        store=store,
        resume=resume,
    )


#: Scenarios compared by :func:`figure_scenarios` (every built-in scenario).
DEFAULT_SCENARIO_SET: tuple[str, ...] = (
    "uniform",
    "clustered",
    "corridor",
    "ring",
    "perturbed-grid",
    "grid-holes",
    "knn",
)


def figure_scenarios(
    config: SweepConfig | None = None,
    *,
    scenarios: tuple[str, ...] | None = None,
    system: str = "duty",
    rate: int = 10,
    store: ExperimentStore | None = None,
    resume: bool = True,
) -> FigureResult:
    """Cross-scenario comparison: mean policy latency per deployment scenario.

    Beyond the paper: one full sweep per scenario (same node counts,
    repetitions, engine and duty model as ``config``), aggregated to the
    mean latency over *all* records of each policy.  The x-axis enumerates
    the scenarios, one series per policy — the figure answers "how robust
    is each policy's advantage when the topology stops being uniform?".
    """
    config = config or sweep_from_env()
    chosen = DEFAULT_SCENARIO_SET if scenarios is None else scenarios
    series: dict[str, list[float]] = {}
    sweeps: list[SweepResult] = []
    for scenario in chosen:
        sweep = run_sweep(
            dataclasses.replace(config, scenario=scenario),
            system=system,
            rate=rate,
            store=store,
            resume=resume,
        )
        sweeps.append(sweep)
        for policy in sweep.policies:
            values = [r.latency for r in sweep.records_for(policy)]
            series.setdefault(policy, []).append(aggregate_latency(values)["mean"])
    unit = "slots" if system == "duty" else "rounds"
    title = (
        f"Mean end-to-end delay per deployment scenario "
        f"({'duty cycle r = ' + str(rate) if system == 'duty' else 'round-based'}, "
        f"duty model {config.duty_model!r})"
    )
    return FigureResult(
        name="Scenario comparison",
        title=title,
        x_label="scenario",
        x_values=tuple(chosen),
        series=series,
        y_label=f"P(A) [{unit}]",
        sweep=sweeps[-1] if sweeps else None,
    )


#: Loss probabilities swept by :func:`figure_reliability`.
DEFAULT_LOSS_PROBABILITIES: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3)

#: Suffix of the retransmission series of :func:`figure_reliability`.
RETX_SUFFIX = " [retx]"


def figure_reliability(
    config: SweepConfig | None = None,
    *,
    loss_probabilities: tuple[float, ...] | None = None,
    system: str = "sync",
    rate: int = 10,
    store: ExperimentStore | None = None,
    resume: bool = True,
) -> FigureResult:
    """Robustness under lossy links: latency and retransmissions vs loss.

    The §VI argument made measurable: one full sweep per loss probability
    (``0.0`` maps to reliable links, so the leftmost column is the paper's
    own workload), aggregated per policy to

    * ``<policy>`` — mean end-to-end latency over all records, and
    * ``<policy> [retx]`` — mean retransmission count per broadcast
      (transmissions beyond each node's first).

    The per-cell deployments and loss streams are seed-paired across the
    loss probabilities, so a policy's curve shows the effect of losing
    deliveries, not of resampling topologies.  Conflict-aware schedulers
    should degrade gracefully: latency inflates roughly like ``1/(1-p)``
    while coverage always completes.
    """
    config = config or sweep_from_env()
    chosen = (
        DEFAULT_LOSS_PROBABILITIES
        if loss_probabilities is None
        else tuple(loss_probabilities)
    )
    # One line-up for the whole figure: the loss-tolerant schedulers of the
    # highest swept probability (planned baselines drop out of lossy sweeps),
    # so every series spans every x position — including the 0.0 column.
    line_up = default_policies(config.with_loss(max(chosen)), system)
    latency_series: dict[str, list[float]] = {}
    retx_series: dict[str, list[float]] = {}
    sweeps: list[SweepResult] = []
    for probability in chosen:
        sweep = run_sweep(
            config.with_loss(probability),
            system=system,
            rate=rate,
            policies=line_up,
            store=store,
            resume=resume,
        )
        sweeps.append(sweep)
        for policy in sweep.policies:
            records = sweep.records_for(policy)
            latency_series.setdefault(policy, []).append(
                aggregate_latency([r.latency for r in records])["mean"]
            )
            retx = [r.retransmissions for r in records]
            retx_series.setdefault(f"{policy}{RETX_SUFFIX}", []).append(
                sum(retx) / len(retx)
            )
    unit = "slots" if system == "duty" else "rounds"
    title = (
        f"Latency and retransmissions vs per-link loss probability "
        f"({'duty cycle r = ' + str(rate) if system == 'duty' else 'round-based'}, "
        f"scenario {config.scenario!r})"
    )
    return FigureResult(
        name="Reliability",
        title=title,
        x_label="loss probability",
        x_values=chosen,
        series={**latency_series, **retx_series},
        y_label=f"P(A) [{unit}] / retransmissions",
        sweep=sweeps[-1] if sweeps else None,
    )


#: Concurrent-message counts swept by :func:`figure_multisource`.
DEFAULT_SOURCE_COUNTS: tuple[int, ...] = (1, 2, 4)

#: Suffix of the total-energy series of :func:`figure_multisource`.
ENERGY_SUFFIX = " [energy]"


def figure_multisource(
    config: SweepConfig | None = None,
    *,
    source_counts: tuple[int, ...] | None = None,
    placement: str | None = None,
    system: str = "duty",
    rate: int = 10,
    store: ExperimentStore | None = None,
    resume: bool = True,
) -> FigureResult:
    """Latency and energy vs the number of concurrent messages ``k``.

    The multi-source workload made measurable: one full sweep per source
    count (``k = 1`` is the paper's single-source broadcast, so the
    leftmost column reproduces the plain sweep bit-for-bit), aggregated per
    policy to

    * ``<policy>`` — mean makespan latency (completion of the slowest
      message) over all records, and
    * ``<policy> [energy]`` — mean total broadcast energy under the default
      :class:`~repro.sim.energy.EnergyModel` (tx + rx/overhearing + idle
      listening over the shared window).

    The per-cell deployments and placement streams are seed-paired across
    the source counts, so a policy's curve shows the cost of concurrent
    wavefronts contending for slots, not of resampling topologies.  One
    line-up spans every column (the planned baselines drop out of ``k > 1``
    sweeps, so the figure keeps the frontier schedulers throughout).
    """
    config = config or sweep_from_env()
    chosen = (
        DEFAULT_SOURCE_COUNTS if source_counts is None else tuple(source_counts)
    )
    if placement is not None:
        config = dataclasses.replace(config, source_placement=placement)
    line_up = default_policies(config.with_sources(max(chosen)), system)
    latency_series: dict[str, list[float]] = {}
    energy_series: dict[str, list[float]] = {}
    sweeps: list[SweepResult] = []
    for count in chosen:
        sweep = run_sweep(
            config.with_sources(count),
            system=system,
            rate=rate,
            policies=line_up,
            store=store,
            resume=resume,
        )
        sweeps.append(sweep)
        for policy in sweep.policies:
            records = sweep.records_for(policy)
            latency_series.setdefault(policy, []).append(
                aggregate_latency([r.latency for r in records])["mean"]
            )
            energy_series.setdefault(f"{policy}{ENERGY_SUFFIX}", []).append(
                aggregate_latency([r.total_energy for r in records])["mean"]
            )
    unit = "slots" if system == "duty" else "rounds"
    title = (
        f"Makespan latency and total energy vs concurrent messages "
        f"({'duty cycle r = ' + str(rate) if system == 'duty' else 'round-based'}, "
        f"placement {config.source_placement!r})"
    )
    return FigureResult(
        name="Multi-source",
        title=title,
        x_label="concurrent messages k",
        x_values=tuple(float(count) for count in chosen),
        series={**latency_series, **energy_series},
        y_label=f"makespan [{unit}] / energy [model units]",
        sweep=sweeps[-1] if sweeps else None,
    )


#: Deployment scenarios of the :func:`figure_ratio` grid.
DEFAULT_RATIO_SCENARIOS: tuple[str, ...] = ("uniform", "clustered", "ring")

#: Duty-cycle models of the :func:`figure_ratio` grid (duty system only).
DEFAULT_RATIO_DUTY_MODELS: tuple[str, ...] = ("uniform", "two-tier")

#: Suffix of the proved-bound series paired with a baseline's observed
#: ratios by :func:`figure_ratio` (mirrors :data:`RETX_SUFFIX`).
BOUND_SUFFIX = " [bound]"


def figure_ratio(
    config: SweepConfig | None = None,
    *,
    scenarios: tuple[str, ...] | None = None,
    duty_models: tuple[str, ...] | None = None,
    system: str = "duty",
    rate: int = 10,
    store: ExperimentStore | None = None,
    resume: bool = True,
) -> FigureResult:
    """Observed approximation ratios vs the exact optimum, per grid cell.

    The empirical counterpart of the solver catalog's proved bounds
    (``docs/solvers.md``): ``config`` — :data:`RATIO_SWEEP` by default —
    must select an exact solver tier, whose certified optimum anchors every
    ratio.  One full sweep runs per grid cell (scenario x duty model for
    the duty system; the duty-model axis collapses for ``system="sync"``,
    where wake-up schedules do not exist), and each policy's latency is
    divided by the exact optimum of the *same* deployment (same node count,
    repetition, source and wake-up schedule) before averaging:

    * ``<policy>`` — mean observed ratio ``latency / optimum`` per cell
      (the exact tier's own series is identically ``1.0``);
    * ``<baseline> [bound]`` — the baseline's proved ratio bound, constant
      across the grid: ``26`` for the synchronous 26-approximation, and
      ``17 k`` for the duty-cycle 17-approximation (latency at most
      ``17 k d`` slots against an optimum of at least ``d``, with ``k``
      the maximum contention-window size :func:`~repro.dutycycle.cwt.max_cwt`
      of the configured rate).

    ``report.ratio_claims`` checks the three invariants this figure makes
    measurable: no ratio below 1, the exact tier exactly at 1, and every
    observed ratio at or below its proved bound.
    """
    config = config or RATIO_SWEEP
    tier = SOLVER_TIERS[config.solver]
    require(
        tier.guarantee == "optimal",
        f"figure_ratio needs an exact solver tier to anchor the ratios; "
        f"config.solver={config.solver!r} guarantees only "
        f"{tier.guarantee!r}",
    )
    chosen_scenarios = (
        DEFAULT_RATIO_SCENARIOS if scenarios is None else tuple(scenarios)
    )
    if system == "sync":
        chosen_models: tuple[str, ...] = (config.duty_model,)
    else:
        chosen_models = (
            DEFAULT_RATIO_DUTY_MODELS if duty_models is None else tuple(duty_models)
        )
    grid = [
        (scenario, duty_model)
        for scenario in chosen_scenarios
        for duty_model in chosen_models
    ]
    labels = tuple(
        scenario if system == "sync" else f"{scenario}/{duty_model}"
        for scenario, duty_model in grid
    )
    series: dict[str, list[float]] = {}
    sweeps: list[SweepResult] = []
    for scenario, duty_model in grid:
        sweep = run_sweep(
            dataclasses.replace(config, scenario=scenario, duty_model=duty_model),
            system=system,
            rate=rate,
            store=store,
            resume=resume,
        )
        sweeps.append(sweep)
        # Pair each record against the exact optimum of its own deployment.
        optimum = {
            (r.num_nodes, r.repetition): r.latency
            for r in sweep.records_for(tier.name)
        }
        for policy in sweep.policies:
            ratios = [
                r.latency / optimum[(r.num_nodes, r.repetition)]
                for r in sweep.records_for(policy)
            ]
            series.setdefault(policy, []).append(sum(ratios) / len(ratios))
    # The proved ratio bounds, paired with the observed series they cap.
    if system == "sync" and "26-approx" in series:
        series[f"26-approx{BOUND_SUFFIX}"] = [26.0] * len(grid)
    if system == "duty" and "17-approx" in series:
        series[f"17-approx{BOUND_SUFFIX}"] = [17.0 * max_cwt(rate)] * len(grid)
    title = (
        f"Observed latency ratio vs the exact optimum "
        f"({'duty cycle r = ' + str(rate) if system == 'duty' else 'round-based'}, "
        f"solver tier {config.solver!r}, n <= {max(config.node_counts)})"
    )
    return FigureResult(
        name="Approximation ratio",
        title=title,
        x_label="scenario" if system == "sync" else "scenario/duty model",
        x_values=labels,
        series=series,
        y_label="latency / optimum",
        sweep=sweeps[-1] if sweeps else None,
    )
