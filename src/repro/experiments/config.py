"""Experiment configurations matching the paper's simulation setting.

Section V-A: 50-300 nodes with a 10-foot communication radius are deployed
uniformly over a 50 x 50 sq-ft area (densities 0.02-0.12 nodes/sq-ft); the
source is chosen with a hop distance of 5-8 to the farthest node; the
duty-cycle experiments use cycle rates ``r = 10`` and ``r = 50`` (a 2% duty
cycle).

Two scales are provided:

* :data:`PAPER_SWEEP` — the full parameterisation above (used when the
  environment variable ``REPRO_BENCH_SCALE=paper`` is set, or explicitly).
* :data:`QUICK_SWEEP` — a reduced sweep (three node counts, two repetitions,
  narrower beam) that keeps the benchmark suite's wall-clock time small
  while preserving every qualitative comparison; this is the default for
  ``pytest benchmarks/``.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field, replace
from enum import Enum

from repro.core.time_counter import SearchConfig
from repro.dutycycle.models import duty_model_names
from repro.network.sources import placement_names
from repro.scenarios import scenario_names
from repro.sim.broadcast import ENGINE_BACKENDS
from repro.sim.links import link_model_names
from repro.solvers.registry import SOLVER_TIERS, solver_names
from repro.utils.validation import check_probability, require

__all__ = [
    "ExperimentScale",
    "SweepConfig",
    "PAPER_SWEEP",
    "QUICK_SWEEP",
    "RATIO_SWEEP",
    "sweep_from_env",
    "SCALE_ENV_VAR",
    "CELL_KEY_EXCLUDED_FIELDS",
]

#: Config fields that never enter a cell's content digest.  ``engine`` and
#: ``workers`` only change *how fast* a cell is simulated (the records are
#: bit-identical by the determinism contract), and the grid shape
#: (``node_counts``, ``repetitions``) is replaced by the cell's own
#: coordinates — so extending a grid with more node counts or repetitions
#: leaves every existing cell's digest (and cached records) intact.
CELL_KEY_EXCLUDED_FIELDS = frozenset(
    {"engine", "workers", "batch", "node_counts", "repetitions"}
)

#: Environment variable selecting the benchmark scale ("quick" or "paper").
SCALE_ENV_VAR = "REPRO_BENCH_SCALE"


class ExperimentScale(str, Enum):
    """Named experiment scales selectable via :data:`SCALE_ENV_VAR`."""

    QUICK = "quick"
    PAPER = "paper"


@dataclass(frozen=True)
class SweepConfig:
    """Parameters of one figure-style sweep.

    Attributes
    ----------
    node_counts:
        Numbers of deployed nodes (the x-axis of Figures 3-7 once divided by
        the area).
    area_side, radius:
        Deployment area side (ft) and communication radius (ft).
    repetitions:
        Independent deployments per node count; figures report the mean.
    seed:
        Base seed; every (node count, repetition) pair derives its own seed.
    source_min_ecc, source_max_ecc:
        Source eccentricity range (hops), per Section V-A.
    search:
        Search configuration of the time-counter policies (OPT / G-OPT).
    max_color_classes:
        Enumeration cap of the OPT policy's admissible colours.
    duty_rates:
        Cycle rates used by the duty-cycle figures (10 = heavy, 50 = light).
    engine:
        Simulation backend from :data:`repro.sim.ENGINE_BACKENDS`:
        ``"reference"`` (frozenset/bigint oracle), ``"vectorized"`` (numpy
        bitset fast path) or ``"batched"`` (stacked multi-lane kernel; the
        sweep runner additionally executes whole same-node-count grid
        stripes in one batch).  All backends produce bit-identical traces.
    workers:
        Worker processes for the sweep runner; 1 runs in-process, 0 means
        "one per CPU".
    batch:
        Lane cap per stacked batch of the ``"batched"`` engine's stripe
        executor (:mod:`repro.sim.batched`): ``0`` stacks a whole
        same-node-count stripe at once, ``k > 0`` chunks it into batches of
        at most ``k`` broadcasts.  Like ``engine`` and ``workers`` this is
        pure execution shape — the records are bit-identical for every
        value — so it stays out of the store's cell keys.  Ignored by the
        per-cell engines.
    scenario:
        Named deployment generator from the :mod:`repro.scenarios` registry
        (``"uniform"`` is the paper's workload; ``--list-scenarios`` on the
        CLI prints the catalog).
    duty_model:
        Named per-node rate assignment from :mod:`repro.dutycycle.models`
        (``"uniform"`` is the paper's single global rate).  Only affects
        ``system="duty"`` sweeps.
    link_model:
        Named delivery model from :data:`repro.sim.links.LINK_MODELS`
        (``"reliable"`` is the paper's model; ``"independent-loss"``
        enables the §VI robustness axis).  Orthogonal to every other axis:
        any combination of (scenario, duty_model, engine, workers,
        link_model) yields bit-identical records.
    loss_probability:
        Per-link delivery failure probability for ``"independent-loss"``
        (must stay 0.0 for ``"reliable"``).  Every cell derives its own
        loss-RNG seed by splitting the cell seed on ``"link-loss"``.
    n_sources:
        Number of concurrent broadcast messages per cell (the multi-source
        workload).  ``1`` is the paper's single-source broadcast and keeps
        every record bit-identical to pre-multi-source sweeps; ``k > 1``
        runs ``k`` contending wavefronts and drops the planned baselines
        (they cannot re-plan around slot contention).
    source_placement:
        Named strategy from :data:`repro.network.sources.SOURCE_PLACEMENTS`
        positioning the ``n_sources - 1`` extra sources around the
        deployment's eccentricity-vetted source (``"random"``, ``"spread"``
        or ``"corner"``); ignored for ``n_sources=1``.  Each cell derives
        its placement seed by splitting the cell seed on ``"multi-source"``,
        so records stay bit-identical for any worker count and engine.
    solver:
        Named tier from :data:`repro.solvers.SOLVER_TIERS` added to the
        policy line-up of every sweep (``--list-solvers`` on the CLI prints
        the catalog).  ``"heuristic"`` — the paper's E-model, already part
        of every default line-up — keeps the sweep bit-identical to
        pre-solver records.  The exact tiers carry an instance-size cap
        (``max_nodes``) and, like the 17/26-approximation baselines, replay
        fixed plans, so they require reliable links and a single source;
        both constraints are enforced here, at configuration time.  The
        solver is *workload* configuration (it changes which records a cell
        produces), so it participates in the store's cell keys.
    """

    node_counts: tuple[int, ...] = (50, 100, 150, 200, 250, 300)
    area_side: float = 50.0
    radius: float = 10.0
    repetitions: int = 5
    seed: int = 2012
    source_min_ecc: int = 5
    source_max_ecc: int | None = 8
    search: SearchConfig = field(
        default_factory=lambda: SearchConfig(mode="beam", beam_width=8)
    )
    max_color_classes: int | None = 32
    duty_rates: tuple[int, ...] = (10, 50)
    engine: str = "reference"
    workers: int = 1
    batch: int = 0
    scenario: str = "uniform"
    duty_model: str = "uniform"
    link_model: str = "reliable"
    loss_probability: float = 0.0
    n_sources: int = 1
    source_placement: str = "random"
    solver: str = "heuristic"

    def __post_init__(self) -> None:
        require(len(self.node_counts) > 0, "node_counts must not be empty")
        require(all(n >= 2 for n in self.node_counts), "node counts must be >= 2")
        require(self.repetitions >= 1, "repetitions must be >= 1")
        require(
            self.engine in ENGINE_BACKENDS,
            f"unknown engine {self.engine!r}; expected one of {sorted(ENGINE_BACKENDS)}",
        )
        require(self.workers >= 0, "workers must be >= 0 (0 = one per CPU)")
        require(self.batch >= 0, "batch must be >= 0 (0 = one batch per stripe)")
        require(
            self.scenario in scenario_names(),
            f"unknown scenario {self.scenario!r}; registered: {scenario_names()}",
        )
        require(
            self.duty_model in duty_model_names(),
            f"unknown duty model {self.duty_model!r}; registered: {duty_model_names()}",
        )
        require(
            self.link_model in link_model_names(),
            f"unknown link model {self.link_model!r}; registered: {link_model_names()}",
        )
        check_probability("loss_probability", self.loss_probability)
        require(
            self.link_model != "reliable" or self.loss_probability == 0.0,
            "loss_probability > 0 requires link_model='independent-loss' "
            "(reliable links never drop deliveries)",
        )
        require(self.n_sources >= 1, "n_sources must be >= 1")
        require(
            self.n_sources <= min(self.node_counts),
            f"n_sources={self.n_sources} exceeds the smallest node count "
            f"{min(self.node_counts)}",
        )
        require(
            self.source_placement in placement_names(),
            f"unknown source placement {self.source_placement!r}; "
            f"registered: {placement_names()}",
        )
        require(
            self.solver in solver_names(),
            f"unknown solver tier {self.solver!r}; registered: {solver_names()}",
        )
        tier = SOLVER_TIERS[self.solver]
        require(
            tier.max_nodes is None or max(self.node_counts) <= tier.max_nodes,
            f"solver tier {self.solver!r} accepts at most {tier.max_nodes} "
            f"nodes, but the grid goes up to {max(self.node_counts)}; use "
            "smaller node_counts or a scalable tier (--list-solvers)",
        )
        require(
            tier.loss_tolerant
            or (self.link_model == "reliable" and self.n_sources == 1),
            f"solver tier {self.solver!r} replays a fixed plan and needs "
            "reliable links and a single source; pick a loss-tolerant tier "
            "for the loss and multi-source axes (--list-solvers)",
        )

    def cell_key_fields(self) -> dict[str, object]:
        """The config fields that parameterise one cell's content digest.

        Everything that can change a cell's records is included (scenario,
        duty model, link model, loss probability, sources, geometry, seed,
        search configuration, ...); the fields in
        :data:`CELL_KEY_EXCLUDED_FIELDS` are dropped because they change
        execution speed or grid shape, never record content.  Nested
        dataclasses (``search``) come back as plain dicts so the result is
        directly JSON-serialisable for hashing.
        """
        fields = dataclasses.asdict(self)
        for name in CELL_KEY_EXCLUDED_FIELDS:
            fields.pop(name)
        return fields

    @property
    def densities(self) -> tuple[float, ...]:
        """Nodes per sq-ft per node count (the paper's x-axis)."""
        area = self.area_side * self.area_side
        return tuple(n / area for n in self.node_counts)

    def with_repetitions(self, repetitions: int) -> "SweepConfig":
        """A copy with a different repetition count."""
        return replace(self, repetitions=repetitions)

    def with_loss(self, loss_probability: float) -> "SweepConfig":
        """A copy on the loss axis: ``0.0`` selects reliable links.

        The reliability figure sweeps this knob; the zero point maps back
        to ``"reliable"`` so its records are bit-identical to a plain sweep.
        """
        return replace(
            self,
            link_model="reliable" if loss_probability == 0.0 else "independent-loss",
            loss_probability=loss_probability,
        )

    def with_sources(self, n_sources: int, placement: str | None = None) -> "SweepConfig":
        """A copy on the multi-source axis (``1`` is the paper's workload).

        The multisource figure sweeps this knob; ``n_sources=1`` records are
        bit-identical to a plain sweep of the same configuration.
        """
        return replace(
            self,
            n_sources=n_sources,
            source_placement=self.source_placement if placement is None else placement,
        )


#: The paper's full parameterisation (Section V-A).
PAPER_SWEEP = SweepConfig()

#: A reduced sweep for fast benchmark runs (same qualitative comparisons).
QUICK_SWEEP = SweepConfig(
    node_counts=(50, 100, 150),
    repetitions=2,
    search=SearchConfig(mode="beam", beam_width=4),
    max_color_classes=16,
)

#: The approximation-ratio study's workload: instances small enough for the
#: exact tier (``max_nodes``), a tighter area so sparse deployments stay
#: connected, and a relaxed source-eccentricity vetting (hop distances of
#: 5-8 are unreachable at these sizes).  ``figures.figure_ratio`` sweeps
#: this grid per (scenario, duty model) and divides every policy's latency
#: by the exact optimum of the same cell.
RATIO_SWEEP = SweepConfig(
    node_counts=(6, 8, 10),
    area_side=20.0,
    repetitions=3,
    source_min_ecc=2,
    source_max_ecc=None,
    solver="exact",
)


def sweep_from_env(default: ExperimentScale = ExperimentScale.QUICK) -> SweepConfig:
    """Pick the sweep configuration from :data:`SCALE_ENV_VAR`.

    Unknown values fall back to ``default`` (quick) so that a typo never
    silently triggers an hour-long benchmark run.
    """
    raw = os.environ.get(SCALE_ENV_VAR, default.value).strip().lower()
    if raw == ExperimentScale.PAPER.value:
        return PAPER_SWEEP
    return QUICK_SWEEP
