"""Sweep runner: deploy, broadcast under every scheduler, collect records.

One *sweep* fixes the system model (round-based or duty-cycle with a given
cycle rate), the deployment scenario and the duty-cycle assignment model,
and runs every scheduler on the same sequence of deployments so the
comparison is paired, exactly like the paper's simulator: for each node
count and repetition a deployment is generated, the source is selected, and
each policy broadcasts from the same source over the same topology (and, in
the duty-cycle system, the same wake-up schedule).

Determinism contract
--------------------
The grid is embarrassingly parallel across ``(node count, repetition)``
cells, and the records are **bit-identical for every worker count**.  The
contract has three legs:

1. *Per-cell seed derivation.*  Every cell derives its own seed with
   :func:`repro.utils.rng.derive_seed` from the experiment seed and the
   cell coordinates ``(system, rate, num_nodes, repetition)`` — never from
   shared mutable RNG state — so a cell's randomness is independent of
   which process runs it, in which order.
2. *Pure generators.*  Deployment scenarios (:mod:`repro.scenarios`) and
   duty-model rate assignments (:mod:`repro.dutycycle.models`) are pure
   functions of ``(name, config, seed)``; the cell seed is further split
   (``"wakeup-schedule"``, ``"duty-model"``, ``"link-loss"``,
   ``"multi-source"``) so the axes stay independent.  The ``"link-loss"``
   stream in particular seeds the lossy link model once per cell, and the
   link model re-derives its RNG per broadcast, so every policy of a cell
   faces the same delivery pattern regardless of execution order, worker
   count or engine; the ``"multi-source"`` stream likewise fixes the extra
   source placement per cell.
3. *Deterministic reassembly.*  ``run_sweep`` re-assembles worker results
   in the serial cell order (``pool.imap``, not ``imap_unordered``).

``run_sweep(..., workers=N)`` fans the cells out over a process pool
(``workers=0`` means one per CPU); ``engine="vectorized"`` switches every
broadcast (and its validation) to the numpy bitset backend, which is
trace-identical to the reference engine — including over lossy links.
``engine="batched"`` goes one step further: the runner groups the missing
cells into same-node-count *stripes* and executes every broadcast of a
stripe as one lane of the stacked kernel (:mod:`repro.sim.batched`), with
``config.batch`` capping the lanes per stacked batch; multi-source and
exact-solver grids bypass the stripes and run per-cell.  Any combination
of ``(scenario, duty_model, link_model, engine, workers, batch)``
therefore changes *what* is simulated or *how fast*, never the records'
reproducibility.

The determinism contract is also what makes cells *cacheable by content*:
``run_sweep(..., store=ExperimentStore(path))`` consults the persistent
store (:mod:`repro.store`) before dispatching — cached cells load from
disk, missing cells are simulated and written back as each finishes, and
the records are re-assembled in the serial cell order either way, so a
warm (or partially warm) store returns records bit-identical to a cold
run for any worker count and engine.  Interrupted sweeps resume from the
cells already persisted; grid extensions (more repetitions, new node
counts, a new loss point) only pay for the delta.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import sys
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

from repro.baselines.approx17 import Approx17Policy
from repro.baselines.approx26 import Approx26Policy
from repro.core.policies import EModelPolicy, GreedyOptPolicy, OptPolicy, SchedulingPolicy
from repro.dutycycle.models import build_wakeup_schedule
from repro.experiments.config import SweepConfig
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.network.sources import select_sources
from repro.obs import events as _events
from repro.obs.bus import EVENT_BUS
from repro.obs.sinks import CallbackSink
from repro.scenarios import generate_scenario
from repro.sim.batched import BatchProfile, BroadcastTask, run_batched
from repro.sim.broadcast import run_broadcast
from repro.sim.energy import energy_of_broadcast
from repro.sim.links import build_link_model
from repro.sim.metrics import aggregate_latency
from repro.solvers.registry import SOLVER_TIERS
from repro.store import ExperimentStore, cell_key_for
from repro.utils.rng import derive_seed

__all__ = [
    "RunRecord",
    "SweepResult",
    "run_sweep",
    "default_policies",
    "SweepCell",
    "sweep_cells",
]

PolicyFactory = Callable[[], SchedulingPolicy]


@dataclass(frozen=True)
class RunRecord:
    """One broadcast of one policy on one deployment.

    ``latency`` is the paper's ``P(A)`` for a single-source broadcast and
    the *makespan* (completion of the slowest message) for a multi-source
    one; ``mean_message_latency`` aggregates the per-message latencies
    (equal to ``latency`` when ``n_sources == 1``).  The four energy
    columns come from :func:`repro.sim.energy.energy_of_broadcast` under
    the default :class:`~repro.sim.energy.EnergyModel` and are present on
    *every* record.
    """

    policy: str
    system: str
    rate: int
    scenario: str
    duty_model: str
    link_model: str
    loss_probability: float
    num_nodes: int
    density: float
    repetition: int
    seed: int
    source: int
    eccentricity: int
    latency: int
    end_time: int
    num_advances: int
    total_transmissions: int
    retransmissions: int
    n_sources: int = 1
    source_placement: str = "random"
    mean_message_latency: float = 0.0
    max_message_latency: int = 0
    tx_energy: float = 0.0
    rx_energy: float = 0.0
    idle_energy: float = 0.0
    total_energy: float = 0.0


@dataclass
class SweepResult:
    """All records of a sweep plus convenience accessors for figure series.

    ``cache_hits`` / ``cache_misses`` count the grid cells served from (or
    written back to) a persistent store when ``run_sweep`` ran with one;
    both stay ``0`` for store-less sweeps.
    """

    system: str
    rate: int
    config: SweepConfig
    records: list[RunRecord] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def policies(self) -> list[str]:
        """Policy names present, in first-appearance order."""
        seen: list[str] = []
        for record in self.records:
            if record.policy not in seen:
                seen.append(record.policy)
        return seen

    def records_for(self, policy: str, num_nodes: int | None = None) -> list[RunRecord]:
        """Records of one policy (optionally restricted to a node count)."""
        return [
            r
            for r in self.records
            if r.policy == policy and (num_nodes is None or r.num_nodes == num_nodes)
        ]

    def mean_latency(self, policy: str, num_nodes: int) -> float:
        """Mean latency of ``policy`` over the repetitions at ``num_nodes``."""
        values = [r.latency for r in self.records_for(policy, num_nodes)]
        return aggregate_latency(values)["mean"]

    def latency_series(self, policies: Sequence[str] | None = None) -> dict[str, list[float]]:
        """Mean latency per node count for each policy (figure series)."""
        chosen = list(policies) if policies is not None else self.policies
        return {
            policy: [self.mean_latency(policy, n) for n in self.config.node_counts]
            for policy in chosen
        }

    def eccentricity_series(self) -> list[float]:
        """Mean source eccentricity ``d`` per node count (for bound curves)."""
        series: list[float] = []
        for n in self.config.node_counts:
            values = {
                (r.repetition): r.eccentricity
                for r in self.records
                if r.num_nodes == n
            }
            series.append(sum(values.values()) / max(len(values), 1))
        return series

    def to_rows(self) -> list[list[object]]:
        """Flat rows (one per record) for CSV export."""
        return [
            [
                r.policy,
                r.system,
                r.rate,
                r.scenario,
                r.duty_model,
                r.link_model,
                f"{r.loss_probability:.3f}",
                r.num_nodes,
                f"{r.density:.4f}",
                r.repetition,
                r.seed,
                r.source,
                r.eccentricity,
                r.latency,
                r.end_time,
                r.num_advances,
                r.total_transmissions,
                r.retransmissions,
                r.n_sources,
                r.source_placement,
                f"{r.mean_message_latency:.2f}",
                r.max_message_latency,
                f"{r.tx_energy:.1f}",
                f"{r.rx_energy:.1f}",
                f"{r.idle_energy:.1f}",
                f"{r.total_energy:.1f}",
            ]
            for r in self.records
        ]

    ROW_HEADERS = (
        "policy",
        "system",
        "rate",
        "scenario",
        "duty_model",
        "link_model",
        "loss_probability",
        "num_nodes",
        "density",
        "repetition",
        "seed",
        "source",
        "eccentricity",
        "latency",
        "end_time",
        "num_advances",
        "total_transmissions",
        "retransmissions",
        "n_sources",
        "source_placement",
        "mean_message_latency",
        "max_message_latency",
        "tx_energy",
        "rx_energy",
        "idle_energy",
        "total_energy",
    )


def _factory_loss_tolerant(factory: PolicyFactory) -> bool:
    """Whether a policy factory produces loss-tolerant policies.

    Inspects the class attribute through ``functools.partial`` wrappers so
    the default line-up can be filtered without instantiating anything.
    """
    target = factory.func if isinstance(factory, functools.partial) else factory
    return getattr(target, "loss_tolerant", True)


def default_policies(
    config: SweepConfig, system: str
) -> dict[str, PolicyFactory]:
    """The paper's scheduler line-up for the given system model.

    Round-based: 26-approximation, OPT, G-OPT, E-model (Figure 3).
    Duty-cycle: 17-approximation, OPT, G-OPT, E-model (Figures 4 and 6).

    On a lossy link model the planned baselines drop out: they replay a
    fixed schedule that assumes reliable delivery and live-lock once
    deliveries fail (the §VI critique), so the lossy line-up is the
    frontier schedulers that degrade gracefully.  The multi-source workload
    (``config.n_sources > 1``) drops them for the same structural reason:
    slot contention defers advances, which only frontier re-planners
    tolerate.

    ``config.solver`` selects an extra tier from
    :data:`repro.solvers.SOLVER_TIERS` and prepends it to the line-up under
    its tier name (strongest guarantee first, matching the catalog order).
    The default ``"heuristic"`` tier *is* the E-model already present in
    every line-up, so default sweeps — and their store cell keys — are
    unchanged; a tier that only schedules for the other system model (the
    26-approximation on duty, the 17-approximation on sync) is rejected
    loudly rather than silently dropped.

    The factories are :func:`functools.partial` objects over importable
    classes, so the mapping pickles cleanly into worker processes.
    """
    if system == "sync":
        line_up: dict[str, PolicyFactory] = {
            "26-approx": Approx26Policy,
            "OPT": functools.partial(
                OptPolicy, search=config.search, max_color_classes=config.max_color_classes
            ),
            "G-OPT": functools.partial(GreedyOptPolicy, search=config.search),
            "E-model": EModelPolicy,
        }
    elif system == "duty":
        line_up = {
            "17-approx": Approx17Policy,
            "OPT": functools.partial(
                OptPolicy, search=config.search, max_color_classes=config.max_color_classes
            ),
            "G-OPT": functools.partial(GreedyOptPolicy, search=config.search),
            "E-model": EModelPolicy,
        }
    else:
        raise ValueError(f"unknown system {system!r}; expected 'sync' or 'duty'")
    tier = SOLVER_TIERS[config.solver]
    if system not in tier.systems:
        raise ValueError(
            f"solver tier {tier.name!r} only schedules for "
            f"{' and '.join(tier.systems)} sweeps, not {system!r}; pick a "
            "tier supporting this system model (--list-solvers)"
        )
    # The heuristic tier is the E-model already in every line-up; the
    # 17/26-approximations are likewise present on their native system.
    # Only a genuinely new tier (the exact solvers) extends the line-up.
    if tier.name != "heuristic" and tier.name not in line_up:
        line_up = {tier.name: tier.factory, **line_up}
    if config.link_model != "reliable" or config.n_sources > 1:
        line_up = {
            name: factory
            for name, factory in line_up.items()
            if _factory_loss_tolerant(factory)
        }
    return line_up


@dataclass(frozen=True)
class SweepCell:
    """One independently executable cell of the sweep grid.

    A cell is a single ``(node count, repetition)`` pair together with
    everything a worker needs to reproduce it from scratch: the sweep
    configuration (for geometry and seeds), the system model, and the policy
    line-up (``None`` selects :func:`default_policies` inside the worker, so
    the default grid never pickles factories at all).
    """

    config: SweepConfig
    system: str
    rate: int
    num_nodes: int
    repetition: int
    engine: str
    policies: tuple[tuple[str, PolicyFactory], ...] | None = None


@dataclass(frozen=True)
class _CellSetup:
    """Everything a cell's broadcasts share, reproduced from its seed.

    The deterministic half of a cell's work (deployment, wake-up schedule,
    link model, source placement) factored out of :func:`_run_cell` so the
    batched stripe executor (:func:`_run_stripe`) prepares many cells and
    hands all their broadcasts to :func:`repro.sim.batched.run_batched` in
    one call — the records stay bit-identical because the setup *is* the
    per-cell one.
    """

    policies: tuple[tuple[str, PolicyFactory], ...]
    seed: int
    topology: object
    source: int
    sources: tuple[int, ...]
    schedule: object
    link_model: object
    eccentricity: int


def _prepare_cell(cell: SweepCell) -> _CellSetup:
    """Reproduce one cell's deployment, schedule, link model and sources."""
    config = cell.config
    if cell.policies is None:
        policies: Mapping[str, PolicyFactory] = default_policies(config, cell.system)
    else:
        policies = dict(cell.policies)
    seed = derive_seed(
        config.seed, cell.system, cell.rate, cell.num_nodes, cell.repetition
    )
    deployment_config = DeploymentConfig(
        num_nodes=cell.num_nodes,
        area_side=config.area_side,
        radius=config.radius,
        source_min_ecc=config.source_min_ecc,
        source_max_ecc=config.source_max_ecc,
    )
    if config.scenario == "uniform":
        # The paper's generator, kept on its original code path so uniform
        # sweeps stay bit-compatible with pre-scenario records.
        topology, source = deploy_uniform(config=deployment_config, seed=seed)
    else:
        deployment = generate_scenario(config.scenario, deployment_config, seed=seed)
        topology, source = deployment.topology, deployment.source
    schedule = None
    if cell.system == "duty":
        schedule = build_wakeup_schedule(
            topology.node_ids,
            rate=cell.rate,
            seed=derive_seed(seed, "wakeup-schedule"),
            model=config.duty_model,
            model_seed=derive_seed(seed, "duty-model"),
        )
    # The loss stream is split off the cell seed once; the link model
    # re-derives its RNG per broadcast, so every policy of the cell is
    # paired against the same delivery pattern.
    link_model = build_link_model(
        config.link_model,
        loss_probability=config.loss_probability,
        seed=derive_seed(seed, "link-loss"),
    )
    eccentricity = topology.eccentricity(source)
    # The multi-source axis: k - 1 extra sources placed around the vetted
    # deployment source by the configured strategy, seeded per cell (the
    # "multi-source" split) so records stay bit-identical for any worker
    # count and engine.  k = 1 keeps the original single-source code path.
    n_sources = config.n_sources
    sources = (source,)
    if n_sources > 1:
        sources = select_sources(
            topology,
            n_sources,
            placement=config.source_placement,
            seed=derive_seed(seed, "multi-source"),
            area_side=config.area_side,
            anchor=source,
        )
    return _CellSetup(
        policies=tuple(policies.items()),
        seed=seed,
        topology=topology,
        source=source,
        sources=tuple(sources),
        schedule=schedule,
        link_model=link_model,
        eccentricity=eccentricity,
    )


def _cell_record(
    cell: SweepCell,
    setup: _CellSetup,
    name: str,
    trace,
    message_latencies: Sequence[int],
) -> RunRecord:
    """Build the :class:`RunRecord` of one (cell, policy) broadcast."""
    config = cell.config
    energy = energy_of_broadcast(setup.topology, trace)
    return RunRecord(
        policy=name,
        system=cell.system,
        rate=cell.rate if cell.system == "duty" else 1,
        scenario=config.scenario,
        duty_model=config.duty_model if cell.system == "duty" else "uniform",
        link_model=config.link_model,
        loss_probability=config.loss_probability,
        num_nodes=cell.num_nodes,
        density=cell.num_nodes / (config.area_side * config.area_side),
        repetition=cell.repetition,
        seed=setup.seed,
        source=setup.source,
        eccentricity=setup.eccentricity,
        latency=trace.latency,
        end_time=trace.end_time,
        num_advances=trace.num_advances,
        total_transmissions=trace.total_transmissions,
        retransmissions=trace.retransmissions,
        n_sources=config.n_sources,
        source_placement=config.source_placement,
        mean_message_latency=sum(message_latencies) / len(message_latencies),
        max_message_latency=max(message_latencies),
        tx_energy=energy.transmission_energy,
        rx_energy=energy.reception_energy,
        idle_energy=energy.idle_energy,
        total_energy=energy.total,
    )


def _run_cell(cell: SweepCell) -> list[RunRecord]:
    """Execute one sweep cell; the unit of work of the process pool."""
    if EVENT_BUS.active:
        EVENT_BUS.emit(
            _events.CellStarted(cell.system, cell.rate, cell.num_nodes, cell.repetition)
        )
    config = cell.config
    setup = _prepare_cell(cell)
    n_sources = config.n_sources
    records: list[RunRecord] = []
    for name, factory in setup.policies:
        if n_sources == 1:
            trace = run_broadcast(
                setup.topology,
                setup.source,
                factory(),
                schedule=setup.schedule,
                align_start=cell.system == "duty",
                engine=cell.engine,
                link_model=setup.link_model,
            )
            message_latencies: tuple[int, ...] = (trace.latency,)
        else:
            trace = run_broadcast(
                setup.topology,
                list(setup.sources),
                [factory() for _ in range(n_sources)],
                schedule=setup.schedule,
                align_start=cell.system == "duty",
                engine=cell.engine,
                link_model=setup.link_model,
            )
            message_latencies = trace.per_message_latency
        records.append(_cell_record(cell, setup, name, trace, message_latencies))
    return records


def _stripe_eligible(config: SweepConfig) -> bool:
    """Whether the batched stripe executor can run this sweep's cells.

    Stripes stack *single-source* broadcasts; multi-source cells go through
    the engines' ``run_multi`` path instead.  Exact solver tiers are also
    left on the per-cell path: their per-policy ``prepare`` dominates the
    cell (branch-and-bound over the whole instance), so stacking the slot
    loops buys nothing and would hold every solved plan alive at once.
    """
    return config.n_sources == 1 and config.solver == "heuristic"


def _run_stripe(
    stripe: tuple[SweepCell, ...], profile: BatchProfile | None = None
) -> list[list[RunRecord]]:
    """Execute one same-node-count stripe of cells in stacked batches.

    The pool work unit of the ``"batched"`` engine: every (cell, policy)
    broadcast of the stripe becomes one :class:`~repro.sim.batched.BroadcastTask`
    lane and :func:`~repro.sim.batched.run_batched` advances them together.
    Cells are *prepared* exactly as :func:`_run_cell` does (same seeds, same
    generators) and each lane keeps its own policy, schedule and link-model
    stream, so the returned records are bit-identical to per-cell execution
    — the stripe only changes how many slot loops run per numpy dispatch.
    """
    setups = [_prepare_cell(cell) for cell in stripe]
    tasks = [
        BroadcastTask(
            setup.topology,
            setup.source,
            factory(),
            schedule=setup.schedule,
            align_start=cell.system == "duty",
            link_model=setup.link_model,
        )
        for cell, setup in zip(stripe, setups)
        for _, factory in setup.policies
    ]
    batch = stripe[0].config.batch
    # With listeners attached, time the stripe through a private profile —
    # StripeFinished wants per-stripe numbers, not the caller's running
    # totals — and fold it into the caller's accumulator afterwards.
    observing = EVENT_BUS.active
    stripe_profile = BatchProfile() if observing else profile
    if observing:
        EVENT_BUS.emit(_events.StripeStarted(stripe[0].num_nodes, len(tasks)))
    traces = iter(
        run_batched(
            tasks, batch=batch, validate=True, prepare=True, profile=stripe_profile
        )
    )
    if observing:
        EVENT_BUS.emit(
            _events.StripeFinished(
                stripe[0].num_nodes,
                len(tasks),
                stripe_profile.kernel_s,
                stripe_profile.decide_s,
                stripe_profile.bookkeeping_s,
                stripe_profile.macro_steps,
                stripe_profile.advances,
            )
        )
        if profile is not None:
            profile.merge(stripe_profile)
    results: list[list[RunRecord]] = []
    for cell, setup in zip(stripe, setups):
        records = []
        for name, _ in setup.policies:
            trace = next(traces)
            records.append(_cell_record(cell, setup, name, trace, (trace.latency,)))
        results.append(records)
    return results


def sweep_cells(
    config: SweepConfig,
    *,
    system: str = "sync",
    rate: int = 10,
    engine: str | None = None,
    policies: Mapping[str, PolicyFactory] | None = None,
) -> list[SweepCell]:
    """The sweep's grid as independently executable cells, in serial order.

    Exactly the cells (and the order) ``run_sweep`` would build for the
    same arguments — the shared vocabulary between the runner and the
    fabric coordinator, which partitions and leases this list to a worker
    fleet (:mod:`repro.fabric`).
    """
    if system not in ("sync", "duty"):
        raise ValueError(f"unknown system {system!r}; expected 'sync' or 'duty'")
    frozen_policies = None if policies is None else tuple(policies.items())
    return [
        SweepCell(
            config=config,
            system=system,
            rate=rate if system == "duty" else 1,
            num_nodes=num_nodes,
            repetition=repetition,
            engine=config.engine if engine is None else engine,
            policies=frozen_policies,
        )
        for num_nodes in config.node_counts
        for repetition in range(config.repetitions)
    ]


def _resolve_workers(workers: int) -> int:
    """Map the ``workers`` knob to a concrete process count (0 = per CPU)."""
    if workers == 0:
        return max(os.cpu_count() or 1, 1)
    return workers


def run_sweep(
    config: SweepConfig,
    *,
    system: str = "sync",
    rate: int = 10,
    policies: Mapping[str, PolicyFactory] | None = None,
    workers: int | None = None,
    engine: str | None = None,
    store: ExperimentStore | None = None,
    resume: bool = True,
    progress: Callable[[str], None] | None = None,
    profile: BatchProfile | None = None,
    fabric: object | None = None,
) -> SweepResult:
    """Run the full sweep and return the collected records.

    Parameters
    ----------
    config:
        Sweep parameterisation (node counts, repetitions, area, radius,
        deployment ``scenario``, ``duty_model``, ...).
    system:
        ``"sync"`` for the round-based system, ``"duty"`` for the duty-cycle
        system (which also generates a wake-up schedule per deployment).
    rate:
        Cycle rate ``r`` for the duty-cycle system (ignored for ``"sync"``).
    policies:
        Mapping ``name -> factory``; defaults to the paper's line-up.  With
        ``workers > 1`` the factories must be picklable (classes,
        ``functools.partial`` over classes, or module-level functions).
    workers:
        Worker processes; defaults to ``config.workers``.  ``1`` executes
        in-process, ``0`` uses one worker per CPU.  The result is
        bit-identical for every worker count: each grid cell derives its
        own RNG stream from the experiment seed and its coordinates.
    engine:
        Simulation backend override (defaults to ``config.engine``).  With
        ``"batched"`` the runner executes whole same-node-count stripes of
        missing cells through :func:`repro.sim.batched.run_batched` (one
        lane per (cell, policy) broadcast, ``config.batch`` lanes per
        stacked batch); stripes become the pool work units.  Multi-source
        and exact-solver sweeps fall back to per-cell vectorized execution.
        Records are bit-identical for every backend and batch size.
    store:
        Persistent :class:`~repro.store.ExperimentStore`.  Every simulated
        cell is written back as it finishes (so an interrupted sweep keeps
        its progress), and — with ``resume`` — cached cells are loaded
        instead of re-simulated.  The cache key deliberately excludes
        ``engine`` and ``workers`` (records are bit-identical across them)
        and the grid shape, so extended grids reuse every overlapping cell.
    resume:
        Consult the store before dispatching (default).  ``False`` forces a
        full re-simulation that overwrites the cached cells.
    progress:
        Optional sink for one-line progress messages (the CLI passes a
        stderr printer); reports the cache hit/miss split.  A legacy shim:
        it is served by a :class:`~repro.obs.sinks.CallbackSink` rendering
        the :class:`~repro.obs.events.SweepStarted` event — new callers
        should attach a sink to :data:`~repro.obs.bus.EVENT_BUS` instead
        and see the full event stream (docs/telemetry.md).
    profile:
        Optional :class:`~repro.sim.batched.BatchProfile` accumulator for
        the batched stripe executor's per-phase timing split (kernel /
        policy decisions / bookkeeping).  Profiling forces the stripes to
        run in-process (phase timers cannot aggregate across pool
        workers), so expect ``workers`` to be ignored while it is set.
        The accumulator stays empty when the sweep does not take the
        batched stripe path (other engines, multi-source or exact-solver
        grids, or every cell already cached).
    fabric:
        Optional fabric executor (:class:`repro.fabric.LocalFleet`, or any
        object with the same ``execute(cells, store=...)`` method): the
        missing cells are leased out to a coordinator/worker fleet instead
        of the process pool, and the coordinator commits each cell to
        ``store`` as it is validated.  Reassembly stays in serial cell
        order, so the records are bit-identical to a pool (or in-process)
        run for any fleet size, worker arrival order, or crash/retry
        history — the fabric determinism contract (see ``docs/fabric.md``).
        Requires the default policy line-up (custom factories cannot cross
        the fabric wire).
    """
    effective_workers = _resolve_workers(
        config.workers if workers is None else workers
    )
    effective_engine = config.engine if engine is None else engine
    effective_rate = 1 if system == "sync" else rate
    if system not in ("sync", "duty"):
        raise ValueError(f"unknown system {system!r}; expected 'sync' or 'duty'")

    frozen_policies = None if policies is None else tuple(policies.items())
    cells = [
        SweepCell(
            config=config,
            system=system,
            rate=rate if system == "duty" else 1,
            num_nodes=num_nodes,
            repetition=repetition,
            engine=effective_engine,
            policies=frozen_policies,
        )
        for num_nodes in config.node_counts
        for repetition in range(config.repetitions)
    ]

    result = SweepResult(system=system, rate=effective_rate, config=config)

    # Partition the grid against the store: cached cells load immediately,
    # missing cells go to the dispatch list.  ``per_cell`` is keyed by the
    # serial cell index so the final reassembly is order-identical to a
    # store-less run regardless of which cells were cached.
    keys: list = []
    per_cell: dict[int, list[RunRecord]] = {}
    if store is not None:
        line_up = (
            policies if policies is not None else default_policies(config, system)
        )
        keys = [
            cell_key_for(
                config,
                system=cell.system,
                rate=cell.rate,
                num_nodes=cell.num_nodes,
                repetition=cell.repetition,
                policies=tuple(line_up),
            )
            for cell in cells
        ]
        if resume:
            for index, key in enumerate(keys):
                cached = store.get(key)
                if cached is not None:
                    per_cell[index] = cached
        result.cache_hits = len(per_cell)
        result.cache_misses = len(cells) - len(per_cell)

    def _finish(index: int, records: list[RunRecord]) -> None:
        per_cell[index] = records
        if store is not None:
            store.put(keys[index], records)
        if EVENT_BUS.active:
            cell = cells[index]
            EVENT_BUS.emit(
                _events.CellFinished(
                    index, cell.num_nodes, cell.repetition, len(records)
                )
            )

    missing = [index for index in range(len(cells)) if index not in per_cell]

    # ``progress=`` predates the event bus; it survives as a CallbackSink
    # that renders SweepStarted back into the legacy one-line store split.
    progress_sink = None
    if progress is not None and store is not None:

        def _legacy_line(event: _events.Event) -> None:
            if isinstance(event, _events.SweepStarted):
                progress(
                    f"store: {event.cached_cells} cells cached, "
                    f"{event.missing_cells} to simulate"
                )

        progress_sink = EVENT_BUS.attach(CallbackSink(_legacy_line))
    try:
        if EVENT_BUS.active:
            EVENT_BUS.emit(
                _events.SweepStarted(
                    system,
                    effective_rate,
                    effective_engine,
                    len(cells),
                    result.cache_hits if store is not None else -1,
                    len(missing),
                )
            )
    finally:
        if progress_sink is not None:
            EVENT_BUS.detach(progress_sink)
    if missing and fabric is not None:
        # Fabric mode: lease the missing cells out to a coordinator/worker
        # fleet.  The coordinator validates and commits each cell into the
        # store itself (idempotently, by digest), so the runner skips its
        # own write-back and only reassembles in serial order.
        if frozen_policies is not None:
            raise ValueError(
                "fabric execution requires the default policy line-up; "
                "custom policy factories cannot cross the fabric wire"
            )
        batches = fabric.execute([cells[index] for index in missing], store=store)
        for index, records in zip(missing, batches):
            per_cell[index] = records
            if EVENT_BUS.active:
                cell = cells[index]
                EVENT_BUS.emit(
                    _events.CellFinished(
                        index, cell.num_nodes, cell.repetition, len(records)
                    )
                )
    elif missing and effective_engine == "batched" and _stripe_eligible(config):
        # Stripe planner: group the missing cells by node count (stacked
        # lanes need one shape) and run each stripe through the batched
        # executor.  Stripes — not cells — are the pool work units; the
        # per-cell store write-back happens here in the parent as each
        # stripe's records arrive, exactly like the per-cell path.
        stripes: dict[int, list[int]] = {}
        for index in missing:
            stripes.setdefault(cells[index].num_nodes, []).append(index)
        stripe_indices = list(stripes.values())
        stripe_cells = [
            tuple(cells[index] for index in indices) for indices in stripe_indices
        ]
        in_process = (
            effective_workers <= 1 or len(stripe_cells) <= 1 or profile is not None
        )
        if in_process:
            # profile forces this path: phase timers accumulate in the
            # parent's BatchProfile, which pool workers could not share.
            stripe_results = (
                _run_stripe(stripe, profile=profile) for stripe in stripe_cells
            )
            for indices, per_stripe in zip(stripe_indices, stripe_results):
                for index, records in zip(indices, per_stripe):
                    _finish(index, records)
        else:
            use_fork = (
                sys.platform.startswith("linux")
                and "fork" in multiprocessing.get_all_start_methods()
            )
            context = multiprocessing.get_context("fork" if use_fork else "spawn")
            processes = min(effective_workers, len(stripe_cells))
            with context.Pool(processes=processes) as pool:
                for indices, per_stripe in zip(
                    stripe_indices, pool.imap(_run_stripe, stripe_cells, chunksize=1)
                ):
                    for index, records in zip(indices, per_stripe):
                        _finish(index, records)
    elif missing:
        pending = [cells[index] for index in missing]
        if effective_engine == "batched":
            # Stripe-ineligible grid (multi-source or exact solver): run the
            # cells per-cell on the vectorized engine.  Records are
            # bit-identical across backends, so the bypass is invisible in
            # the output (and in the store, which never keys on the engine).
            pending = [replace(cell, engine="vectorized") for cell in pending]
        if effective_workers <= 1 or len(pending) <= 1:
            for index, cell in zip(missing, pending):
                _finish(index, _run_cell(cell))
        else:
            # "fork" on Linux (cheap start-up, no __main__ re-import, so it
            # also works from interactive sessions); "spawn" everywhere else
            # — macOS offers fork but it is unsafe there with
            # Accelerate/objc state, which is why CPython made spawn the
            # macOS default.  The cells are self-contained either way: the
            # only pickled state is the cell itself.  The parent process
            # alone touches the store, as each worker's batch arrives.
            use_fork = (
                sys.platform.startswith("linux")
                and "fork" in multiprocessing.get_all_start_methods()
            )
            context = multiprocessing.get_context("fork" if use_fork else "spawn")
            processes = min(effective_workers, len(pending))
            with context.Pool(processes=processes) as pool:
                for index, records in zip(
                    missing, pool.imap(_run_cell, pending, chunksize=1)
                ):
                    _finish(index, records)

    for index in range(len(cells)):
        result.records.extend(per_cell[index])
    if EVENT_BUS.active:
        EVENT_BUS.emit(
            _events.SweepFinished(
                len(result.records), result.cache_hits, result.cache_misses
            )
        )
    return result
