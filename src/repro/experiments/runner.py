"""Sweep runner: deploy, broadcast under every scheduler, collect records.

One *sweep* fixes the system model (round-based or duty-cycle with a given
cycle rate) and runs every scheduler on the same sequence of deployments so
the comparison is paired, exactly like the paper's simulator: for each node
count and repetition a deployment is generated, the source is selected, and
each policy broadcasts from the same source over the same topology (and, in
the duty-cycle system, the same wake-up schedule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.baselines.approx17 import Approx17Policy
from repro.baselines.approx26 import Approx26Policy
from repro.core.policies import EModelPolicy, GreedyOptPolicy, OptPolicy, SchedulingPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.experiments.config import SweepConfig
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.sim.broadcast import run_broadcast
from repro.sim.metrics import aggregate_latency
from repro.utils.rng import derive_seed

__all__ = ["RunRecord", "SweepResult", "run_sweep", "default_policies"]

PolicyFactory = Callable[[], SchedulingPolicy]


@dataclass(frozen=True)
class RunRecord:
    """One broadcast of one policy on one deployment."""

    policy: str
    system: str
    rate: int
    num_nodes: int
    density: float
    repetition: int
    seed: int
    source: int
    eccentricity: int
    latency: int
    end_time: int
    num_advances: int
    total_transmissions: int


@dataclass
class SweepResult:
    """All records of a sweep plus convenience accessors for figure series."""

    system: str
    rate: int
    config: SweepConfig
    records: list[RunRecord] = field(default_factory=list)

    @property
    def policies(self) -> list[str]:
        """Policy names present, in first-appearance order."""
        seen: list[str] = []
        for record in self.records:
            if record.policy not in seen:
                seen.append(record.policy)
        return seen

    def records_for(self, policy: str, num_nodes: int | None = None) -> list[RunRecord]:
        """Records of one policy (optionally restricted to a node count)."""
        return [
            r
            for r in self.records
            if r.policy == policy and (num_nodes is None or r.num_nodes == num_nodes)
        ]

    def mean_latency(self, policy: str, num_nodes: int) -> float:
        """Mean latency of ``policy`` over the repetitions at ``num_nodes``."""
        values = [r.latency for r in self.records_for(policy, num_nodes)]
        return aggregate_latency(values)["mean"]

    def latency_series(self, policies: Sequence[str] | None = None) -> dict[str, list[float]]:
        """Mean latency per node count for each policy (figure series)."""
        chosen = list(policies) if policies is not None else self.policies
        return {
            policy: [self.mean_latency(policy, n) for n in self.config.node_counts]
            for policy in chosen
        }

    def eccentricity_series(self) -> list[float]:
        """Mean source eccentricity ``d`` per node count (for bound curves)."""
        series: list[float] = []
        for n in self.config.node_counts:
            values = {
                (r.repetition): r.eccentricity
                for r in self.records
                if r.num_nodes == n
            }
            series.append(sum(values.values()) / max(len(values), 1))
        return series

    def to_rows(self) -> list[list[object]]:
        """Flat rows (one per record) for CSV export."""
        return [
            [
                r.policy,
                r.system,
                r.rate,
                r.num_nodes,
                f"{r.density:.4f}",
                r.repetition,
                r.seed,
                r.source,
                r.eccentricity,
                r.latency,
                r.end_time,
                r.num_advances,
                r.total_transmissions,
            ]
            for r in self.records
        ]

    ROW_HEADERS = (
        "policy",
        "system",
        "rate",
        "num_nodes",
        "density",
        "repetition",
        "seed",
        "source",
        "eccentricity",
        "latency",
        "end_time",
        "num_advances",
        "total_transmissions",
    )


def default_policies(
    config: SweepConfig, system: str
) -> dict[str, PolicyFactory]:
    """The paper's scheduler line-up for the given system model.

    Round-based: 26-approximation, OPT, G-OPT, E-model (Figure 3).
    Duty-cycle: 17-approximation, OPT, G-OPT, E-model (Figures 4 and 6).
    """
    if system == "sync":
        return {
            "26-approx": Approx26Policy,
            "OPT": lambda: OptPolicy(
                search=config.search, max_color_classes=config.max_color_classes
            ),
            "G-OPT": lambda: GreedyOptPolicy(search=config.search),
            "E-model": EModelPolicy,
        }
    if system == "duty":
        return {
            "17-approx": Approx17Policy,
            "OPT": lambda: OptPolicy(
                search=config.search, max_color_classes=config.max_color_classes
            ),
            "G-OPT": lambda: GreedyOptPolicy(search=config.search),
            "E-model": EModelPolicy,
        }
    raise ValueError(f"unknown system {system!r}; expected 'sync' or 'duty'")


def run_sweep(
    config: SweepConfig,
    *,
    system: str = "sync",
    rate: int = 10,
    policies: Mapping[str, PolicyFactory] | None = None,
) -> SweepResult:
    """Run the full sweep and return the collected records.

    Parameters
    ----------
    config:
        Sweep parameterisation (node counts, repetitions, area, radius, ...).
    system:
        ``"sync"`` for the round-based system, ``"duty"`` for the duty-cycle
        system (which also generates a wake-up schedule per deployment).
    rate:
        Cycle rate ``r`` for the duty-cycle system (ignored for ``"sync"``).
    policies:
        Mapping ``name -> factory``; defaults to the paper's line-up.
    """
    if policies is None:
        policies = default_policies(config, system)
    effective_rate = 1 if system == "sync" else rate
    result = SweepResult(system=system, rate=effective_rate, config=config)
    area = config.area_side * config.area_side

    for num_nodes in config.node_counts:
        for repetition in range(config.repetitions):
            seed = derive_seed(config.seed, system, effective_rate, num_nodes, repetition)
            deployment_config = DeploymentConfig(
                num_nodes=num_nodes,
                area_side=config.area_side,
                radius=config.radius,
                source_min_ecc=config.source_min_ecc,
                source_max_ecc=config.source_max_ecc,
            )
            topology, source = deploy_uniform(config=deployment_config, seed=seed)
            schedule = None
            if system == "duty":
                schedule = WakeupSchedule(
                    topology.node_ids,
                    rate=rate,
                    seed=derive_seed(seed, "wakeup-schedule"),
                )
            eccentricity = topology.eccentricity(source)

            for name, factory in policies.items():
                policy = factory()
                trace = run_broadcast(
                    topology,
                    source,
                    policy,
                    schedule=schedule,
                    align_start=system == "duty",
                )
                result.records.append(
                    RunRecord(
                        policy=name,
                        system=system,
                        rate=effective_rate,
                        num_nodes=num_nodes,
                        density=num_nodes / area,
                        repetition=repetition,
                        seed=seed,
                        source=source,
                        eccentricity=eccentricity,
                        latency=trace.latency,
                        end_time=trace.end_time,
                        num_advances=trace.num_advances,
                        total_transmissions=trace.total_transmissions,
                    )
                )
    return result
