"""Command-line interface: figures, tables, and scenario sweeps.

Examples
--------
Regenerate Figure 3 at the quick scale and print it as a text table::

    mlbs-experiments figure3

Regenerate every figure at the paper's full scale and write CSVs::

    mlbs-experiments all --scale paper --csv-dir results/

Run a duty-cycle sweep on a non-uniform deployment scenario (the default
target is ``sweep``; records print as CSV and are bit-identical for any
``--workers`` value)::

    mlbs-experiments --scenario clustered --engine vectorized --workers 2
    mlbs-experiments --scenario ring --duty-model two-tier --rate 50

Compare every policy across all registered scenarios::

    mlbs-experiments scenarios

Exercise the §VI robustness axis — a single lossy sweep, or the full
reliability figure (latency + retransmissions vs loss probability)::

    mlbs-experiments --loss 0.2 --engine vectorized
    mlbs-experiments reliability --loss 0.0,0.1,0.3

Run the multi-source workload — a single sweep with ``k`` concurrent
messages, or the full multisource figure (makespan latency + total energy
vs ``k``)::

    mlbs-experiments --sources 4 --source-placement spread
    mlbs-experiments multisource --sources 1,2,4

Persist sweeps in a content-addressed experiment store: the first run
populates it, reruns load cached cells (``store: N cells cached, 0 to
simulate``), and extended grids only pay for the delta.  Inspect, prune or
dump the store with the ``store`` target::

    mlbs-experiments sweep --store results/store
    mlbs-experiments figure4 --store results/store
    mlbs-experiments store stats --store results/store
    mlbs-experiments store export --store results/store --format csv
    mlbs-experiments store gc --store results/store

Run the approximation-ratio study — every policy's latency divided by the
exact solver's certified optimum on small instances, checked against the
proved bounds (exit code 1 if any ratio claim fails)::

    mlbs-experiments ratio
    mlbs-experiments ratio --system sync --solver branch-and-bound

Distribute a sweep over a worker fleet with the ``fabric`` target: one
coordinator leases the grid's missing cells out over HTTP, any number of
workers (on any machine that can reach it) claim, simulate and post them
back, and the records land in the shared store — bit-identical to a local
run (see docs/fabric.md)::

    mlbs-experiments fabric serve --store results/store --port 8765
    mlbs-experiments fabric work --url http://127.0.0.1:8765
    mlbs-experiments fabric status --url http://127.0.0.1:8765

Watch any of it live: ``--trace`` makes a sweep (or a serving coordinator)
append every telemetry event to a JSONL file, and the ``monitor`` target
renders a refreshing dashboard from a store, a live trace file and/or a
fabric coordinator URL (``--telemetry`` on ``fabric serve`` also exposes a
``/metrics`` JSON endpoint — see docs/telemetry.md)::

    mlbs-experiments sweep --store results/store --trace results/sweep.jsonl
    mlbs-experiments monitor --store results/store --trace results/sweep.jsonl
    mlbs-experiments fabric serve --store results/store --telemetry
    mlbs-experiments monitor --url http://127.0.0.1:8765

Discover the registered workloads and solver tiers::

    mlbs-experiments --list-scenarios
    mlbs-experiments --list-duty-models
    mlbs-experiments --list-solvers

The same entry point is reachable with ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from pathlib import Path

from repro.dutycycle.models import duty_model_names, list_duty_models
from repro.experiments import figures as figures_mod
from repro.experiments import tables as tables_mod
from repro.experiments.config import PAPER_SWEEP, QUICK_SWEEP, RATIO_SWEEP, SweepConfig
from repro.experiments.report import (
    claims_to_text,
    ratio_claims,
    store_summary_text,
    summary_claims,
)
from repro.experiments.runner import SweepResult, run_sweep, sweep_cells
from repro.fabric import (
    DEFAULT_LEASE_TTL,
    FabricCoordinator,
    FabricHTTPServer,
    FabricWorker,
    HttpTransport,
    TransportError,
)
from repro.network.sources import placement_names
from repro.obs import EVENT_BUS, JsonlTraceSink, SweepMonitor
from repro.scenarios import list_scenarios, scenario_names
from repro.sim.batched import BatchProfile
from repro.sim.broadcast import ENGINE_BACKENDS
from repro.sim.links import link_model_names
from repro.solvers import solver_catalog, solver_names
from repro.store import ExperimentStore, open_store, store_backend_names
from repro.utils.format import to_csv

__all__ = ["main", "build_parser"]

_FIGURES = {
    "figure3": figures_mod.figure3,
    "figure4": figures_mod.figure4,
    "figure5": figures_mod.figure5,
    "figure6": figures_mod.figure6,
    "figure7": figures_mod.figure7,
}
_TABLES = {
    "table2": tables_mod.table2,
    "table3": tables_mod.table3,
    "table4": tables_mod.table4,
}


def _parse_node_counts(text: str) -> tuple[int, ...]:
    """Parse ``--nodes "50,100"`` with a clean usage error on bad input."""
    try:
        counts = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None
    if not counts:
        raise argparse.ArgumentTypeError("at least one node count is required")
    return counts


def _parse_loss(text: str) -> tuple[float, ...]:
    """Parse ``--loss "0.1"`` or ``--loss "0.0,0.1,0.3"`` (reliability target)."""
    try:
        values = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated probabilities, got {text!r}"
        ) from None
    if not values:
        raise argparse.ArgumentTypeError("at least one loss probability is required")
    bad = [v for v in values if not 0.0 <= v <= 1.0]
    if bad:
        raise argparse.ArgumentTypeError(f"loss probabilities must be in [0, 1]: {bad}")
    return values


def _parse_sources(text: str) -> tuple[int, ...]:
    """Parse ``--sources "4"`` or ``--sources "1,2,4"`` (multisource target)."""
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None
    if not values:
        raise argparse.ArgumentTypeError("at least one source count is required")
    bad = [v for v in values if v < 1]
    if bad:
        raise argparse.ArgumentTypeError(f"source counts must be >= 1: {bad}")
    return values


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="mlbs-experiments",
        description=(
            "Regenerate the tables and figures of 'Minimum Latency Broadcasting "
            "with Conflict Awareness in WSNs' (ICPP 2012), or sweep any "
            "registered deployment scenario / duty-cycle model."
        ),
    )
    parser.add_argument(
        "target",
        nargs="?",
        default="sweep",
        choices=[
            *_FIGURES,
            *_TABLES,
            "claims",
            "scenarios",
            "reliability",
            "multisource",
            "ratio",
            "sweep",
            "store",
            "fabric",
            "monitor",
            "all",
        ],
        help=(
            "which figure/table to regenerate; 'sweep' (the default) runs one "
            "sweep and prints its records as CSV; 'scenarios' compares the "
            "policies across deployment scenarios; 'reliability' sweeps the "
            "per-link loss probability (latency + retransmissions per policy); "
            "'multisource' sweeps the concurrent-message count (makespan + "
            "energy per policy); 'ratio' runs the approximation-ratio study "
            "(observed latency / exact optimum vs the proved bounds, exit "
            "code 1 if a ratio claim fails); 'store' manages a persistent "
            "experiment store (see the 'action' positional); 'fabric' runs a "
            "distributed sweep over a coordinator/worker fleet (see the "
            "'action' positional and docs/fabric.md); 'monitor' renders a "
            "refreshing dashboard from --store, --trace and/or --url (see "
            "docs/telemetry.md); 'all' covers the paper's figures, tables "
            "and claims"
        ),
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        choices=["stats", "gc", "export", "serve", "work", "status"],
        help=(
            "subcommand of the 'store' target — 'stats' summarises the cached "
            "cells, 'gc' prunes unreachable entries (dangling rows, orphan "
            "shards, old schema versions), 'export' dumps every cached record "
            "(--format, --output) — or of the 'fabric' target: 'serve' runs "
            "the coordinator for one sweep grid until every cell is in the "
            "store, 'work' runs one worker against a coordinator --url, "
            "'status' prints a coordinator's live status JSON"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "paper"],
        default=None,
        help="sweep scale (default: REPRO_BENCH_SCALE or 'quick')",
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=None,
        help="override the number of deployments per node count",
    )
    parser.add_argument(
        "--nodes",
        type=_parse_node_counts,
        default=None,
        metavar="N1,N2,...",
        help="override the node counts of the scale (comma-separated)",
    )
    parser.add_argument(
        "--csv-dir",
        type=Path,
        default=None,
        help="also write each result as CSV into this directory",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="parallel worker processes for the sweeps (0 = one per CPU; default 1)",
    )
    parser.add_argument(
        "--engine",
        choices=sorted(ENGINE_BACKENDS),
        default=None,
        help="simulation backend (default: reference; all are bit-identical)",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="K",
        help=(
            "lane cap per stacked batch of the batched engine's stripe "
            "executor (0 = whole stripe at once; ignored by other engines)"
        ),
    )
    parser.add_argument(
        "--loss",
        type=_parse_loss,
        default=None,
        metavar="P[,P,...]",
        help=(
            "per-link delivery failure probability for the 'sweep' and "
            "'scenarios' targets (implies --link-model independent-loss); the "
            "'reliability' target accepts a comma-separated list of "
            "probabilities to sweep (default: 0.0,0.1,0.2,0.3)"
        ),
    )
    parser.add_argument(
        "--link-model",
        choices=link_model_names(),
        default=None,
        help="delivery model (default: reliable; see docs/reliability.md)",
    )
    parser.add_argument(
        "--sources",
        type=_parse_sources,
        default=None,
        metavar="K[,K,...]",
        help=(
            "number of concurrent broadcast messages for the 'sweep' and "
            "'scenarios' targets (default: 1, the paper's single source); the "
            "'multisource' target accepts a comma-separated list of source "
            "counts to sweep (default: 1,2,4)"
        ),
    )
    parser.add_argument(
        "--source-placement",
        choices=placement_names(),
        default=None,
        help=(
            "placement strategy for the extra sources of a multi-source run "
            "(default: random; see docs/workloads.md)"
        ),
    )
    parser.add_argument(
        "--scenario",
        choices=scenario_names(),
        default=None,
        help="deployment scenario (default: uniform; see --list-scenarios)",
    )
    parser.add_argument(
        "--duty-model",
        choices=duty_model_names(),
        default=None,
        help="per-node duty-cycle model (default: uniform; see --list-duty-models)",
    )
    parser.add_argument(
        "--system",
        choices=["sync", "duty"],
        default="duty",
        help="system model for the 'sweep' and 'scenarios' targets (default: duty)",
    )
    parser.add_argument(
        "--rate",
        type=int,
        default=10,
        help="cycle rate r for the 'sweep' and 'scenarios' targets (default: 10)",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "persistent experiment store directory: sweeps load cached cells "
            "from it and write simulated cells back, so reruns and grid "
            "extensions only pay for the delta (see docs/store.md)"
        ),
    )
    parser.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "consult the store before simulating (default); --no-resume "
            "forces a full re-simulation that refreshes the cached cells"
        ),
    )
    parser.add_argument(
        "--format",
        choices=store_backend_names(),
        default="jsonl",
        help="record format of 'store export' (default: jsonl)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="PATH",
        help="write 'store export' to this file instead of stdout",
    )
    parser.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="coordinator base URL for 'fabric work' and 'fabric status'",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address of 'fabric serve' (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="port of 'fabric serve' (default: 0 = pick a free port)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        metavar="SECONDS",
        help=(
            "seconds before an unheartbeated fabric lease expires and its "
            f"cell is requeued (default: {DEFAULT_LEASE_TTL:g})"
        ),
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=5,
        metavar="N",
        help=(
            "fabric attempts per cell before it is quarantined as a poison "
            "cell (default: 5)"
        ),
    )
    parser.add_argument(
        "--linger",
        type=float,
        default=3.0,
        metavar="SECONDS",
        help=(
            "how long 'fabric serve' keeps answering after the grid is done, "
            "so polling workers see a clean 'done' instead of a vanished "
            "coordinator (default: 3)"
        ),
    )
    parser.add_argument(
        "--status-file",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "'fabric serve'/'fabric status': also write the coordinator "
            "status JSON to this file"
        ),
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "append every telemetry event as one JSON line to this file: "
            "'sweep' and 'fabric serve' write it while they run, 'monitor' "
            "follows it live (see docs/telemetry.md)"
        ),
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "'fabric serve': also publish the coordinator's metrics registry "
            "as a /metrics JSON endpoint"
        ),
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="refresh period of the 'monitor' target (default: 1)",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=None,
        metavar="N",
        help=(
            "render N 'monitor' frames and exit (default: refresh until "
            "interrupted)"
        ),
    )
    parser.add_argument(
        "--worker-name",
        default=None,
        metavar="NAME",
        help="worker identity reported by 'fabric work' (default: host-pid)",
    )
    parser.add_argument(
        "--solver",
        choices=solver_names(),
        default=None,
        help=(
            "solver tier added to the policy line-up (default: heuristic, "
            "the paper's E-model already in every line-up; 'ratio' defaults "
            "to exact; see --list-solvers and docs/solvers.md)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "report the batched engine's timing split (stacked kernels / "
            "policy decisions / bookkeeping) for the 'sweep' target; forces "
            "in-process execution and requires --engine batched on a "
            "stripe-eligible sweep (single-source, heuristic solver)"
        ),
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the registered deployment scenarios and exit",
    )
    parser.add_argument(
        "--list-duty-models",
        action="store_true",
        help="print the registered duty-cycle models and exit",
    )
    parser.add_argument(
        "--list-solvers",
        action="store_true",
        help="print the registered solver tiers and exit",
    )
    return parser


def _config_from_args(args: argparse.Namespace) -> SweepConfig:
    if args.target == "ratio":
        # The ratio study needs instances small enough for the exact tier,
        # so it starts from its own preset rather than the sweep scales
        # (--nodes / --solver still override it).
        config = RATIO_SWEEP
    elif args.scale == "paper":
        config = PAPER_SWEEP
    elif args.scale == "quick":
        config = QUICK_SWEEP
    else:
        scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
        config = PAPER_SWEEP if scale == "paper" else QUICK_SWEEP
    if args.repetitions is not None:
        config = config.with_repetitions(args.repetitions)
    if args.nodes is not None:
        config = dataclasses.replace(config, node_counts=args.nodes)
    if args.workers is not None:
        config = dataclasses.replace(config, workers=args.workers)
    if args.engine is not None:
        config = dataclasses.replace(config, engine=args.engine)
    if args.batch is not None:
        config = dataclasses.replace(config, batch=args.batch)
    if args.scenario is not None:
        config = dataclasses.replace(config, scenario=args.scenario)
    if args.duty_model is not None:
        config = dataclasses.replace(config, duty_model=args.duty_model)
    if args.link_model is not None:
        config = dataclasses.replace(config, link_model=args.link_model)
    # A single --loss value configures the sweep itself; the 'reliability'
    # target instead sweeps its (possibly plural) probabilities one by one.
    if args.loss is not None and args.target != "reliability":
        config = config.with_loss(args.loss[0])
    if args.source_placement is not None:
        config = dataclasses.replace(config, source_placement=args.source_placement)
    # Same split for --sources: a single value configures the sweep; the
    # 'multisource' target sweeps its (possibly plural) counts one by one.
    if args.sources is not None and args.target != "multisource":
        config = dataclasses.replace(config, n_sources=args.sources[0])
    if args.solver is not None:
        config = dataclasses.replace(config, solver=args.solver)
    return config


def _format_catalog(title: str, entries: list[tuple[str, str, dict]]) -> str:
    lines = [title]
    width = max((len(name) for name, _, _ in entries), default=0)
    for name, summary, defaults in entries:
        lines.append(f"  {name:<{width}}  {summary}")
        if defaults:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(defaults.items()))
            lines.append(f"  {'':<{width}}  defaults: {rendered}")
    return "\n".join(lines)


def _profile_line(profile: BatchProfile) -> str:
    """One-line batched-engine timing split for the sweep header."""
    if profile.macro_steps == 0:
        return (
            "profile: no batched stripes ran (needs --engine batched on a "
            "stripe-eligible sweep with uncached cells)"
        )
    return (
        f"profile: kernel {profile.kernel_s * 1e3:.1f} ms | "
        f"policy decisions {profile.decide_s * 1e3:.1f} ms | "
        f"bookkeeping {profile.bookkeeping_s * 1e3:.1f} ms "
        f"(total {profile.total_s * 1e3:.1f} ms over "
        f"{profile.macro_steps} macro-steps, "
        f"{profile.lanes_decided} decisions, {profile.advances} advances)"
    )


def _emit(name: str, text: str, csv: str | None, csv_dir: Path | None) -> None:
    print(text)
    print()
    if csv_dir is not None and csv is not None:
        csv_dir.mkdir(parents=True, exist_ok=True)
        path = csv_dir / f"{name}.csv"
        path.write_text(csv)
        print(f"[wrote {path}]")


def _write_status(status: dict, path: Path | None) -> None:
    if path is not None:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(status, indent=2, sort_keys=True) + "\n")


def _status_line(status: dict) -> str:
    counts = status["counts"]
    return (
        f"fabric: {counts['completed']}/{status['total']} cells done "
        f"(pending {counts['pending']}, leased {counts['leased']}, "
        f"quarantined {counts['quarantined']}); "
        f"{len(status['workers'])} worker(s) seen"
    )


def _run_fabric(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """The ``fabric serve|work|status`` actions (exit code as documented)."""
    if args.action == "serve":
        if args.store is None:
            parser.error("'fabric serve' requires --store PATH (the shared store)")
        config = _config_from_args(args)
        cells = sweep_cells(config, system=args.system, rate=args.rate)
        trace_sink = (
            EVENT_BUS.attach(JsonlTraceSink(args.trace))
            if args.trace is not None
            else None
        )
        try:
            with ExperimentStore(args.store) as store:
                coordinator = FabricCoordinator(
                    cells,
                    store=store,
                    resume=args.resume,
                    lease_ttl=args.lease_ttl,
                    max_attempts=args.max_attempts,
                )
                with FabricHTTPServer(
                    coordinator,
                    host=args.host,
                    port=args.port,
                    expose_metrics=args.telemetry,
                ) as server:
                    print(
                        f"fabric serve: {server.url} ({len(cells)} cells)", flush=True
                    )
                    if args.telemetry:
                        print(
                            f"fabric serve: metrics at {server.url}/metrics",
                            flush=True,
                        )
                    last = ""
                    while True:
                        coordinator.tick()
                        status = coordinator.status()
                        line = _status_line(status)
                        if line != last:
                            print(line, file=sys.stderr, flush=True)
                            last = line
                        counts = status["counts"]
                        if counts["pending"] == 0 and counts["leased"] == 0:
                            # Grace period: workers poll every couple of
                            # seconds, so answering a little longer turns
                            # their last claim into a clean "done" instead
                            # of a dead socket.
                            time.sleep(max(args.linger, 0.0))
                            break
                        time.sleep(0.2)
                status = coordinator.status()
                _write_status(status, args.status_file)
                quarantined = coordinator.quarantined
        finally:
            if trace_sink is not None:
                EVENT_BUS.detach(trace_sink)
                trace_sink.close()
                print(
                    f"fabric serve: {trace_sink.written} events -> {args.trace}",
                    file=sys.stderr,
                    flush=True,
                )
        if quarantined:
            for index, reason in sorted(quarantined.items()):
                print(f"fabric: cell {index} quarantined: {reason}", file=sys.stderr)
            return 1
        print(_status_line(status), flush=True)
        return 0

    if args.url is None:
        parser.error(f"'fabric {args.action}' requires --url (the coordinator)")
    transport = HttpTransport(args.url)
    try:
        if args.action == "status":
            status = transport.request("status", {})
            _write_status(status, args.status_file)
            print(json.dumps(status, indent=2, sort_keys=True))
            return 0
        name = args.worker_name or f"{os.uname().nodename}-{os.getpid()}"
        worker = FabricWorker(transport, name=name)
        stats = worker.run()
        print(
            f"fabric work: {name} completed {stats.completed} cell(s) "
            f"({stats.claims} claims, {stats.duplicates} duplicates, "
            f"{stats.rejected} rejected, {stats.abandoned} abandoned, "
            f"{stats.transport_errors} transport errors)"
        )
        return 0
    except TransportError as error:
        print(f"fabric {args.action}: {error}", file=sys.stderr)
        return 1
    finally:
        transport.close()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    # The paper-reproduction targets keep the paper's labels and claim
    # thresholds, which are only meaningful on the paper's workload (uniform
    # deployments, reliable links); the scenario and loss axes belong to the
    # 'sweep', 'scenarios' and 'reliability' targets.
    non_paper = [
        flag
        for flag, value in (
            ("--scenario", args.scenario),
            ("--duty-model", args.duty_model),
        )
        if value not in (None, "uniform")
    ]
    # --loss 0.0 configures exactly the paper's reliable model, so it is as
    # paper-safe as --link-model reliable; --sources 1 likewise selects the
    # paper's single-source broadcast.
    if args.loss is not None and any(value > 0.0 for value in args.loss):
        non_paper.append("--loss")
    if args.link_model not in (None, "reliable"):
        non_paper.append("--link-model")
    if args.sources is not None and any(value > 1 for value in args.sources):
        non_paper.append("--sources")
    # --source-placement random is the default strategy (and a no-op at the
    # paper's n_sources=1), so only a non-default choice is non-paper.
    if args.source_placement not in (None, "random"):
        non_paper.append("--source-placement")
    # --solver heuristic is the default tier of every line-up, so only a
    # non-default tier changes the sweep away from the paper's workload.
    if args.solver not in (None, "heuristic"):
        non_paper.append("--solver")
    workload_targets = (
        "sweep",
        "scenarios",
        "reliability",
        "multisource",
        "ratio",
        "fabric",
        "monitor",
    )
    if non_paper and args.target not in workload_targets:
        parser.error(
            f"{'/'.join(non_paper)} only applies to the 'sweep', 'scenarios', "
            f"'reliability' and 'multisource' targets; {args.target!r} "
            "reproduces the paper's reliable uniform workload"
        )
    if (
        args.loss is not None
        and len(args.loss) != 1
        and args.target != "reliability"
    ):
        parser.error(
            "--loss takes a single probability for the 'sweep', 'scenarios' "
            "and 'multisource' targets; a comma-separated list selects the "
            "points of the 'reliability' target"
        )
    if (
        args.sources is not None
        and len(args.sources) != 1
        and args.target != "multisource"
    ):
        parser.error(
            "--sources takes a single count for the 'sweep', 'scenarios' and "
            "'reliability' targets; a comma-separated list selects the points "
            "of the 'multisource' target"
        )

    store_actions = ("stats", "gc", "export")
    fabric_actions = ("serve", "work", "status")
    if args.action is not None and args.target not in ("store", "fabric"):
        parser.error(
            "the stats/gc/export action only applies to the 'store' target, "
            "and serve/work/status to the 'fabric' target"
        )
    if args.target == "fabric":
        if args.action not in fabric_actions:
            parser.error(
                "the 'fabric' target requires an action: serve, work or status"
            )
        return _run_fabric(args, parser)
    if args.target == "monitor":
        if args.store is None and args.trace is None and args.url is None:
            parser.error(
                "the 'monitor' target needs at least one feed: --store PATH, "
                "--trace PATH and/or --url URL"
            )
        monitor_store = open_store(args.store)
        try:
            monitor = SweepMonitor(
                store=monitor_store, trace=args.trace, url=args.url
            )
            return monitor.watch(interval=args.interval, frames=args.frames)
        finally:
            if monitor_store is not None:
                monitor_store.close()
    if args.target == "store":
        if args.store is None:
            parser.error("the 'store' target requires --store PATH")
        if args.action not in store_actions:
            parser.error("the 'store' target requires an action: stats, gc or export")
        with ExperimentStore(args.store) as target_store:
            if args.action == "stats":
                print(store_summary_text(target_store))
            elif args.action == "gc":
                removed = target_store.gc()
                print(
                    f"gc: removed {removed.total} items "
                    f"(dangling rows {removed.dangling_rows}, "
                    f"orphan shards {removed.orphan_shards}, "
                    f"stale-schema cells {removed.stale_schema_cells}, "
                    f"temp files {removed.temp_files}); "
                    f"{removed.in_flight_temp_files} in-flight temp file(s) "
                    "left for their writer"
                )
            else:
                text = target_store.export(args.format)
                if args.output is not None:
                    args.output.parent.mkdir(parents=True, exist_ok=True)
                    args.output.write_text(text)
                    print(f"[wrote {args.output}]")
                else:
                    print(text, end="")
        return 0

    if args.list_scenarios or args.list_duty_models or args.list_solvers:
        if args.list_scenarios:
            print(
                _format_catalog(
                    "Registered deployment scenarios (--scenario):",
                    [(s.name, s.summary, dict(s.defaults)) for s in list_scenarios()],
                )
            )
        if args.list_duty_models:
            print(
                _format_catalog(
                    "Registered duty-cycle models (--duty-model):",
                    [(m.name, m.summary, dict(m.defaults)) for m in list_duty_models()],
                )
            )
        if args.list_solvers:
            print(
                _format_catalog(
                    "Registered solver tiers (--solver):",
                    [(name, summary, {}) for name, summary in solver_catalog()],
                )
            )
        return 0

    config = _config_from_args(args)
    store = open_store(args.store)

    def _progress(message: str) -> None:
        print(message, file=sys.stderr)

    targets = (
        [args.target]
        if args.target != "all"
        else [*_FIGURES, *_TABLES, "claims"]
    )
    fig_cache: dict[str, figures_mod.FigureResult] = {}
    exit_code = 0

    try:
        for target in targets:
            if target in _FIGURES:
                result = _FIGURES[target](config, store=store, resume=args.resume)
                fig_cache[target] = result
                _emit(target, result.to_text(), result.to_csv(), args.csv_dir)
            elif target in _TABLES:
                table = _TABLES[target]()
                _emit(target, table.to_text(), None, args.csv_dir)
            elif target == "scenarios":
                result = figures_mod.figure_scenarios(
                    config,
                    system=args.system,
                    rate=args.rate,
                    store=store,
                    resume=args.resume,
                )
                _emit(target, result.to_text(), result.to_csv(), args.csv_dir)
            elif target == "reliability":
                result = figures_mod.figure_reliability(
                    config,
                    loss_probabilities=args.loss,
                    system=args.system,
                    rate=args.rate,
                    store=store,
                    resume=args.resume,
                )
                _emit(target, result.to_text(), result.to_csv(), args.csv_dir)
            elif target == "multisource":
                result = figures_mod.figure_multisource(
                    config,
                    source_counts=args.sources,
                    system=args.system,
                    rate=args.rate,
                    store=store,
                    resume=args.resume,
                )
                _emit(target, result.to_text(), result.to_csv(), args.csv_dir)
            elif target == "ratio":
                result = figures_mod.figure_ratio(
                    config,
                    system=args.system,
                    rate=args.rate,
                    store=store,
                    resume=args.resume,
                )
                checks = ratio_claims(result)
                held = sum(1 for check in checks if check.holds)
                summary = (
                    f"ratio: {held}/{len(checks)} claims hold "
                    f"(solver={config.solver} system={args.system})"
                )
                text = f"{result.to_text()}\n\n{claims_to_text(checks)}\n{summary}"
                _emit(target, text, result.to_csv(), args.csv_dir)
                if held != len(checks):
                    exit_code = 1
            elif target == "sweep":
                profile = BatchProfile() if args.profile else None
                trace_sink = (
                    EVENT_BUS.attach(JsonlTraceSink(args.trace))
                    if args.trace is not None
                    else None
                )
                try:
                    sweep = run_sweep(
                        config,
                        system=args.system,
                        rate=args.rate,
                        store=store,
                        resume=args.resume,
                        progress=_progress if store is not None else None,
                        profile=profile,
                    )
                finally:
                    if trace_sink is not None:
                        EVENT_BUS.detach(trace_sink)
                        trace_sink.close()
                csv = to_csv(SweepResult.ROW_HEADERS, sweep.to_rows())
                header = (
                    f"sweep: scenario={config.scenario} duty_model={config.duty_model} "
                    f"link_model={config.link_model} loss={config.loss_probability} "
                    f"sources={config.n_sources} placement={config.source_placement} "
                    f"system={sweep.system} rate={sweep.rate} engine={config.engine} "
                    f"records={len(sweep.records)}"
                )
                if store is not None:
                    total = sweep.cache_hits + sweep.cache_misses
                    cached = 100.0 * sweep.cache_hits / total if total else 0.0
                    header += (
                        f"\nstore: {sweep.cache_hits} hits / "
                        f"{sweep.cache_misses} misses ({cached:.0f}% cached)"
                    )
                if profile is not None:
                    header += f"\n{_profile_line(profile)}"
                if trace_sink is not None:
                    header += (
                        f"\ntrace: {trace_sink.written} events -> {args.trace}"
                    )
                _emit(target, f"{header}\n{csv.rstrip()}", csv, args.csv_dir)
            elif target == "claims":
                fig3 = fig_cache.get("figure3") or figures_mod.figure3(
                    config, store=store, resume=args.resume
                )
                fig4 = fig_cache.get("figure4") or figures_mod.figure4(
                    config, store=store, resume=args.resume
                )
                fig6 = fig_cache.get("figure6") or figures_mod.figure6(
                    config, store=store, resume=args.resume
                )
                checks = summary_claims(fig3, fig4, fig6)
                _emit("claims", claims_to_text(checks), None, args.csv_dir)
    finally:
        if store is not None:
            store.close()
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
