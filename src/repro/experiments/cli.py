"""Command-line interface: regenerate any figure or table of the paper.

Examples
--------
Regenerate Figure 3 at the quick scale and print it as a text table::

    mlbs-experiments figure3

Regenerate every figure at the paper's full scale and write CSVs::

    mlbs-experiments all --scale paper --csv-dir results/

The same entry point is reachable with ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from pathlib import Path

from repro.experiments import figures as figures_mod
from repro.experiments import tables as tables_mod
from repro.experiments.config import PAPER_SWEEP, QUICK_SWEEP, SweepConfig
from repro.experiments.report import claims_to_text, summary_claims

__all__ = ["main", "build_parser"]

_FIGURES = {
    "figure3": figures_mod.figure3,
    "figure4": figures_mod.figure4,
    "figure5": figures_mod.figure5,
    "figure6": figures_mod.figure6,
    "figure7": figures_mod.figure7,
}
_TABLES = {
    "table2": tables_mod.table2,
    "table3": tables_mod.table3,
    "table4": tables_mod.table4,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="mlbs-experiments",
        description=(
            "Regenerate the tables and figures of 'Minimum Latency Broadcasting "
            "with Conflict Awareness in WSNs' (ICPP 2012)."
        ),
    )
    parser.add_argument(
        "target",
        choices=[*_FIGURES, *_TABLES, "claims", "all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "paper"],
        default=None,
        help="sweep scale (default: REPRO_BENCH_SCALE or 'quick')",
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=None,
        help="override the number of deployments per node count",
    )
    parser.add_argument(
        "--csv-dir",
        type=Path,
        default=None,
        help="also write each result as CSV into this directory",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="parallel worker processes for the sweeps (0 = one per CPU; default 1)",
    )
    parser.add_argument(
        "--engine",
        choices=["reference", "vectorized"],
        default=None,
        help="simulation backend (default: reference; both are bit-identical)",
    )
    return parser


def _config_from_args(args: argparse.Namespace) -> SweepConfig:
    if args.scale == "paper":
        config = PAPER_SWEEP
    elif args.scale == "quick":
        config = QUICK_SWEEP
    else:
        scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
        config = PAPER_SWEEP if scale == "paper" else QUICK_SWEEP
    if args.repetitions is not None:
        config = config.with_repetitions(args.repetitions)
    if args.workers is not None:
        config = dataclasses.replace(config, workers=args.workers)
    if args.engine is not None:
        config = dataclasses.replace(config, engine=args.engine)
    return config


def _emit(name: str, text: str, csv: str | None, csv_dir: Path | None) -> None:
    print(text)
    print()
    if csv_dir is not None and csv is not None:
        csv_dir.mkdir(parents=True, exist_ok=True)
        path = csv_dir / f"{name}.csv"
        path.write_text(csv)
        print(f"[wrote {path}]")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    config = _config_from_args(args)

    targets = (
        [args.target]
        if args.target != "all"
        else [*_FIGURES, *_TABLES, "claims"]
    )
    fig_cache: dict[str, figures_mod.FigureResult] = {}

    for target in targets:
        if target in _FIGURES:
            result = _FIGURES[target](config)
            fig_cache[target] = result
            _emit(target, result.to_text(), result.to_csv(), args.csv_dir)
        elif target in _TABLES:
            table = _TABLES[target]()
            _emit(target, table.to_text(), None, args.csv_dir)
        elif target == "claims":
            fig3 = fig_cache.get("figure3") or figures_mod.figure3(config)
            fig4 = fig_cache.get("figure4") or figures_mod.figure4(config)
            fig6 = fig_cache.get("figure6") or figures_mod.figure6(config)
            checks = summary_claims(fig3, fig4, fig6)
            _emit("claims", claims_to_text(checks), None, args.csv_dir)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
