"""Summary-claim evaluation (Section V-C) and CSV/report helpers.

Section V-C distils the figures into a handful of quantitative claims; this
module recomputes them from reproduced figure results so EXPERIMENTS.md (and
the ``benchmarks/test_summary_claims.py`` bench) can put the paper's numbers
and the measured numbers side by side:

* at least ~70% latency improvement over the 26-approximation in the
  round-based system;
* 85-90% improvement over the 17-approximation in the duty-cycle systems;
* G-OPT within 2 rounds of OPT in the round-based system;
* G-OPT equal to OPT in the light duty-cycle system and within ``r`` slots
  in the heavy duty-cycle system;
* the E-model close to G-OPT/OPT in all systems.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.figures import (
    BOUND_SUFFIX,
    ENERGY_SUFFIX,
    RETX_SUFFIX,
    FigureResult,
)
from repro.sim.metrics import improvement_percent
from repro.solvers.registry import SOLVER_TIERS
from repro.store import ExperimentStore
from repro.utils.format import format_table

__all__ = [
    "ClaimCheck",
    "summary_claims",
    "summary_claims_from_store",
    "reliability_claims",
    "multisource_claims",
    "ratio_claims",
    "claims_to_text",
    "store_summary_text",
]


@dataclass(frozen=True)
class ClaimCheck:
    """One §V-C claim: the paper's statement vs the measured quantity."""

    claim: str
    paper: str
    measured: str
    value: float
    holds: bool


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


def summary_claims(
    fig3: FigureResult,
    fig4: FigureResult | None = None,
    fig6: FigureResult | None = None,
    *,
    sync_improvement_floor: float = 25.0,
    duty_improvement_floor: float = 50.0,
    gopt_gap_rounds: float = 2.0,
) -> list[ClaimCheck]:
    """Evaluate the Section V-C claims on reproduced figure results.

    The ``*_floor`` thresholds are the acceptance criteria used by the
    benchmark (they are intentionally looser than the paper's headline
    numbers because our baseline re-implementations are somewhat stronger
    than the originals — see EXPERIMENTS.md for the discussion).
    """
    checks: list[ClaimCheck] = []

    baseline = _mean(fig3.series_for("26-approx"))
    gopt = _mean(fig3.series_for("G-OPT"))
    opt = _mean(fig3.series_for("OPT"))
    emodel = _mean(fig3.series_for("E-model"))
    sync_improvement = improvement_percent(baseline, gopt)
    checks.append(
        ClaimCheck(
            claim="Synchronous: G-OPT improves on the 26-approximation",
            paper=">= 70% improvement expected",
            measured=f"{sync_improvement:.1f}% mean improvement",
            value=sync_improvement,
            holds=sync_improvement >= sync_improvement_floor,
        )
    )
    gap = max(
        g - o for g, o in zip(fig3.series_for("G-OPT"), fig3.series_for("OPT"))
    )
    checks.append(
        ClaimCheck(
            claim="Synchronous: G-OPT within 2 rounds of OPT",
            paper="difference no more than 2 hops/rounds",
            measured=f"max mean gap {gap:.2f} rounds",
            value=gap,
            holds=gap <= gopt_gap_rounds,
        )
    )
    emodel_gap = improvement_percent(baseline, emodel)
    checks.append(
        ClaimCheck(
            claim="Synchronous: E-model close to the optimisation targets",
            paper="close to OPT / G-OPT",
            measured=(
                f"E-model {emodel:.1f} vs G-OPT {gopt:.1f} rounds "
                f"({emodel_gap:.1f}% below the baseline)"
            ),
            value=emodel - gopt,
            holds=emodel_gap >= sync_improvement_floor / 2,
        )
    )

    for figure, label in ((fig4, "heavy duty cycle (r=10)"), (fig6, "light duty cycle (r=50)")):
        if figure is None:
            continue
        baseline_d = _mean(figure.series_for("17-approx"))
        gopt_d = _mean(figure.series_for("G-OPT"))
        improvement = improvement_percent(baseline_d, gopt_d)
        checks.append(
            ClaimCheck(
                claim=f"{label}: G-OPT improves on the 17-approximation",
                paper="85% up to 90% improvement expected",
                measured=f"{improvement:.1f}% mean improvement",
                value=improvement,
                holds=improvement >= duty_improvement_floor,
            )
        )
    return checks


def _figure_from_store(store: ExperimentStore, name: str, **filters) -> FigureResult:
    """One paper figure rebuilt from cached records (query layer, no sims)."""
    sweep = store.query(**filters)
    return FigureResult(
        name=name,
        title=f"{name} (from store {store.root})",
        x_label="density (nodes/sq-ft)",
        x_values=sweep.config.densities,
        series=sweep.latency_series(),
        sweep=sweep,
    )


def summary_claims_from_store(
    store: ExperimentStore, **thresholds: float
) -> list[ClaimCheck]:
    """Recompute the §V-C claims purely from cached records.

    Reads the paper's workload (uniform deployments, reliable links, one
    source) through the store's query layer — the figures come back from
    disk, no cell is simulated.  The synchronous figure is required; the
    duty-cycle figures contribute their claims only when their sweeps are
    cached (``rate`` 10 and 50).  ``thresholds`` forward to
    :func:`summary_claims`.
    """
    paper_axes = dict(
        scenario="uniform", duty_model="uniform", link_model="reliable", n_sources=1
    )
    fig3 = _figure_from_store(store, "Figure 3", system="sync", **paper_axes)
    duty: dict[int, FigureResult | None] = {}
    for rate, name in ((10, "Figure 4"), (50, "Figure 6")):
        try:
            duty[rate] = _figure_from_store(
                store, name, system="duty", rate=rate, **paper_axes
            )
        except LookupError:
            duty[rate] = None
    return summary_claims(fig3, duty[10], duty[50], **thresholds)


def store_summary_text(store: ExperimentStore) -> str:
    """Render a store's :meth:`~repro.store.ExperimentStore.stats` as text
    (the ``store stats`` CLI target)."""
    stats = store.stats()

    def _rendered(grouped: dict) -> str:
        return (
            ", ".join(f"{key}: {count}" for key, count in grouped.items()) or "-"
        )

    rows = [
        ["cached cells", str(stats.cells)],
        ["records", str(stats.records)],
        ["shard bytes", str(stats.shard_bytes)],
        ["systems", _rendered(stats.systems)],
        ["scenarios", _rendered(stats.scenarios)],
        ["link models", _rendered(stats.link_models)],
        ["schema versions", _rendered(stats.schema_versions)],
    ]
    return f"store: {store.root}\n{format_table(['field', 'value'], rows)}"


def reliability_claims(figure: FigureResult) -> list[ClaimCheck]:
    """Evaluate the §VI robustness claims on a reliability figure.

    ``figure`` is the result of
    :func:`repro.experiments.figures.figure_reliability`; its x axis is the
    loss probability and its series come in pairs (``<policy>`` latency,
    ``<policy> [retx]`` retransmissions).  Two checks per policy:

    * *graceful degradation* — every broadcast completed (the sweep raises
      otherwise) and the mean latency under losses never beats the
      loss-free mean (losing deliveries cannot speed up coverage);
    * *retransmissions absorb the losses* — at the highest loss rate the
      policy retransmits at least as much as at zero loss (the frontier
      re-serves uncovered nodes instead of live-locking).
    """
    checks: list[ClaimCheck] = []
    policies = [name for name in figure.series if not name.endswith(RETX_SUFFIX)]
    # The CLI accepts the loss points in any order; baseline on the least
    # lossy point and compare against the lossiest one, not on positions.
    losses = [float(value) for value in figure.x_values]
    base = min(range(len(losses)), key=losses.__getitem__)
    peak = max(range(len(losses)), key=losses.__getitem__)
    for policy in policies:
        latency = figure.series_for(policy)
        degradation = min(value - latency[base] for value in latency)
        checks.append(
            ClaimCheck(
                claim=f"{policy}: losses never speed up the broadcast",
                paper="§VI: uncovered nodes stay in the frontier",
                measured=(
                    f"mean latency {latency[base]:.1f} -> {latency[peak]:.1f} "
                    f"across loss {losses[base]}..{losses[peak]}"
                ),
                value=latency[peak] - latency[base],
                holds=degradation >= 0.0,
            )
        )
        retx = figure.series_for(f"{policy}{RETX_SUFFIX}")
        checks.append(
            ClaimCheck(
                claim=f"{policy}: retransmissions absorb the losses",
                paper="graceful degradation, no protocol change",
                measured=f"mean retransmissions {retx[base]:.1f} -> {retx[peak]:.1f}",
                value=retx[peak],
                holds=retx[peak] >= retx[base],
            )
        )
    return checks


def multisource_claims(figure: FigureResult) -> list[ClaimCheck]:
    """Evaluate the structural multi-source claims on a multisource figure.

    ``figure`` is the result of
    :func:`repro.experiments.figures.figure_multisource`; its x axis is the
    concurrent-message count ``k`` and its series come in pairs
    (``<policy>`` makespan, ``<policy> [energy]`` total energy).  Two
    checks per policy:

    * *concurrency is never free* — every message must still cover the
      whole network, so the mean makespan at the largest ``k`` is at least
      the single-message mean (wavefronts add work and contend for slots);
    * *energy grows with the message count* — more wavefronts mean more
      transmissions and a same-or-longer idle window, so the mean total
      energy is non-decreasing from the smallest to the largest ``k``.
    """
    checks: list[ClaimCheck] = []
    policies = [name for name in figure.series if not name.endswith(ENERGY_SUFFIX)]
    counts = [float(value) for value in figure.x_values]
    base = min(range(len(counts)), key=counts.__getitem__)
    peak = max(range(len(counts)), key=counts.__getitem__)
    for policy in policies:
        makespan = figure.series_for(policy)
        checks.append(
            ClaimCheck(
                claim=f"{policy}: concurrent messages never shrink the makespan",
                paper="every wavefront still covers the whole network",
                measured=(
                    f"mean makespan {makespan[base]:.1f} -> {makespan[peak]:.1f} "
                    f"across k = {counts[base]:.0f}..{counts[peak]:.0f}"
                ),
                value=makespan[peak] - makespan[base],
                holds=makespan[peak] >= makespan[base],
            )
        )
        energy = figure.series_for(f"{policy}{ENERGY_SUFFIX}")
        checks.append(
            ClaimCheck(
                claim=f"{policy}: total energy grows with the message count",
                paper="more wavefronts burn more radio energy",
                measured=f"mean energy {energy[base]:.0f} -> {energy[peak]:.0f}",
                value=energy[peak],
                holds=energy[peak] >= energy[base],
            )
        )
    return checks


def ratio_claims(figure: FigureResult) -> list[ClaimCheck]:
    """Evaluate the approximation-ratio invariants on a ratio figure.

    ``figure`` is the result of
    :func:`repro.experiments.figures.figure_ratio`; its x axis enumerates
    the scenario x duty-model grid and its series are observed latency
    ratios against the exact optimum, with proved bounds attached as
    ``<baseline> [bound]`` pairs.  Three families of checks:

    * *the optimum is a true floor* — no policy's observed ratio dips
      below 1 on any grid cell (the exact tier certifies the minimum over
      every conflict-aware schedule, so a smaller ratio would disprove it);
    * *the exact tier is exact* — the solver tier's own ratio is
      identically ``1.0`` across the grid;
    * *proved bounds hold empirically* — every baseline with a proved
      ratio bound stays at or below it on every grid cell (the catalog's
      guarantee column, measured).
    """
    checks: list[ClaimCheck] = []
    policies = [name for name in figure.series if not name.endswith(BOUND_SUFFIX)]
    for policy in policies:
        ratios = figure.series_for(policy)
        low = min(ratios)
        checks.append(
            ClaimCheck(
                claim=f"{policy}: never beats the certified optimum",
                paper="exact tier is a true lower bound",
                measured=f"min observed ratio {low:.3f}",
                value=low,
                holds=low >= 1.0 - 1e-9,
            )
        )
        tier = SOLVER_TIERS.get(policy)
        if tier is not None and tier.guarantee == "optimal":
            high = max(ratios)
            checks.append(
                ClaimCheck(
                    claim=f"{policy}: achieves ratio 1 on every grid cell",
                    paper="optimal by the determinism contract",
                    measured=f"observed ratios {low:.3f}..{high:.3f}",
                    value=high,
                    holds=low == 1.0 and high == 1.0,
                )
            )
        bound_series = figure.series.get(f"{policy}{BOUND_SUFFIX}")
        if bound_series is not None:
            worst = max(
                observed - bound for observed, bound in zip(ratios, bound_series)
            )
            checks.append(
                ClaimCheck(
                    claim=f"{policy}: observed ratio within the proved bound",
                    paper=f"proved ratio bound {min(bound_series):g}",
                    measured=f"max observed ratio {max(ratios):.3f}",
                    value=max(ratios),
                    holds=worst <= 0.0,
                )
            )
    return checks


def claims_to_text(checks: list[ClaimCheck]) -> str:
    """Render claim checks as an aligned text table."""
    headers = ["claim", "paper", "measured", "holds"]
    rows = [[c.claim, c.paper, c.measured, "yes" if c.holds else "NO"] for c in checks]
    return format_table(headers, rows)
