#!/usr/bin/env python
"""Robustness scenario: broadcasting over lossy links, with energy accounting.

Section VI of the paper criticises schedulers that rely on "healthy,
interference-free links": once deliveries fail, they need retransmissions
and can even live-lock.  The conflict-aware frontier schedulers reproduced
here degrade gracefully instead — a node that misses a transmission simply
stays in the uncovered set and is served by a later advance.  This example

* sweeps the per-link loss probability and reports how the end-to-end
  latency inflates for the centralised E-model and the localized contention
  scheduler (the paper's §VII future-work direction);
* attaches the first-order radio energy model to the traces so the latency /
  energy trade-off of retransmissions is visible.

Losses run through the composable simulation core
(``run_broadcast(..., link_model=IndependentLossLinks(p, seed=s))``), so
``--engine vectorized`` runs the same sweep on the numpy bitset backend
with bit-identical results.

Run it with::

    python examples/unreliable_links.py [--nodes 100] [--max-loss 0.4] \
        [--engine vectorized]
"""

from __future__ import annotations

import argparse

from repro import EModelPolicy, LocalizedEModelPolicy, deploy_uniform
from repro.sim.broadcast import ENGINE_BACKENDS
from repro.sim.energy import EnergyModel, energy_of_broadcast
from repro.sim.render import render_schedule_timeline, render_topology_ascii
from repro.sim.unreliable import run_lossy_broadcast
from repro.utils.format import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=100)
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--max-loss", type=float, default=0.4)
    parser.add_argument("--steps", type=int, default=5)
    parser.add_argument(
        "--engine", choices=sorted(ENGINE_BACKENDS), default="reference"
    )
    args = parser.parse_args()

    topology, source = deploy_uniform(num_nodes=args.nodes, seed=args.seed)
    print(render_topology_ascii(topology, width=56, height=18, highlight=source))
    print()

    energy_model = EnergyModel()
    probabilities = [
        round(args.max_loss * step / (args.steps - 1), 3) for step in range(args.steps)
    ]
    rows = []
    sample_trace = None
    for policy_name, policy_factory in (
        ("E-model", EModelPolicy),
        ("localized-E", LocalizedEModelPolicy),
    ):
        for probability in probabilities:
            result = run_lossy_broadcast(
                topology,
                source,
                policy_factory(),
                loss_probability=probability,
                seed=args.seed + int(probability * 1000),
                engine=args.engine,
            )
            report = energy_of_broadcast(topology, result, energy_model)
            rows.append(
                [
                    policy_name,
                    f"{probability:.2f}",
                    result.latency,
                    result.total_transmissions,
                    result.retransmissions,
                    f"{report.total:.0f}",
                    f"{report.hottest_node()[1]:.0f}",
                ]
            )
            if policy_name == "E-model" and probability == probabilities[-1]:
                sample_trace = result

    print(
        format_table(
            [
                "scheduler",
                "loss prob",
                "P(A) [rounds]",
                "transmissions",
                "retransmissions",
                "energy [units]",
                "hottest node",
            ],
            rows,
        )
    )

    if sample_trace is not None:
        print("\nSample schedule at the highest loss rate (retransmissions visible):")
        print(render_schedule_timeline(sample_trace, max_entries=15))


if __name__ == "__main__":
    main()
