#!/usr/bin/env python
"""Density sweep: regenerate a small version of the paper's Figures 3 and 4.

The paper's evaluation sweeps the deployment density from 0.02 to 0.12
nodes/sq-ft and reports the end-to-end delay of every scheduler.  This
example runs a configurable slice of that sweep and prints the same series
as text tables and CSV — handy for spot-checking trends without running the
full benchmark suite.

Run it with::

    python examples/density_sweep.py [--scale quick|paper] [--repetitions 2]
    python examples/density_sweep.py --system duty --rate 50
"""

from __future__ import annotations

import argparse

from repro.experiments.config import PAPER_SWEEP, QUICK_SWEEP
from repro.experiments.figures import figure3, figure4, figure6
from repro.experiments.report import claims_to_text, summary_claims


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["quick", "paper"], default="quick")
    parser.add_argument("--repetitions", type=int, default=None)
    parser.add_argument(
        "--system",
        choices=["sync", "duty", "both"],
        default="sync",
        help="which system model to sweep",
    )
    parser.add_argument("--rate", type=int, default=10, help="duty-cycle rate r")
    parser.add_argument("--csv", action="store_true", help="also print CSV output")
    args = parser.parse_args()

    config = PAPER_SWEEP if args.scale == "paper" else QUICK_SWEEP
    if args.repetitions is not None:
        config = config.with_repetitions(args.repetitions)

    results = []
    if args.system in ("sync", "both"):
        results.append(figure3(config))
    if args.system in ("duty", "both"):
        results.append(figure4(config) if args.rate == 10 else figure6(config))

    for figure in results:
        print(figure.to_text())
        print()
        if args.csv:
            print(figure.to_csv())

    if args.system == "both":
        checks = summary_claims(results[0], results[1])
        print("Section V-C claims on this sweep:")
        print(claims_to_text(checks))


if __name__ == "__main__":
    main()
