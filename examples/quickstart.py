#!/usr/bin/env python
"""Quickstart: broadcast over a random WSN with every scheduler.

This example walks through the library's core workflow:

1. deploy a paper-style WSN (uniform random positions, unit-disc radio);
2. broadcast from the selected source with each scheduler the paper
   evaluates (the 26-approximation baseline, OPT, G-OPT and the E-model);
3. compare the end-to-end latency ``P(A)`` and a few secondary metrics.

Run it with::

    python examples/quickstart.py [--nodes 150] [--seed 7]
"""

from __future__ import annotations

import argparse

from repro import (
    Approx26Policy,
    BroadcastMetrics,
    EModelPolicy,
    GreedyOptPolicy,
    OptPolicy,
    deploy_uniform,
    run_broadcast,
)
from repro.core.time_counter import SearchConfig
from repro.sim.metrics import improvement_percent
from repro.utils.format import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=150, help="number of sensor nodes")
    parser.add_argument("--seed", type=int, default=7, help="deployment seed")
    args = parser.parse_args()

    print(f"Deploying {args.nodes} nodes on a 50 x 50 sq-ft area (radius 10 ft)...")
    topology, source = deploy_uniform(num_nodes=args.nodes, seed=args.seed)
    eccentricity = topology.eccentricity(source)
    print(
        f"  source = node {source}, farthest node is {eccentricity} hops away, "
        f"average degree {topology.average_degree():.1f}\n"
    )

    # Beam search keeps the M-driven schedulers fast at this network size;
    # exact search is available for small topologies (see the tests).
    beam = SearchConfig(mode="beam", beam_width=6)
    schedulers = {
        "26-approx (baseline)": Approx26Policy(),
        "OPT": OptPolicy(search=beam, max_color_classes=24),
        "G-OPT": GreedyOptPolicy(search=beam),
        "E-model": EModelPolicy(),
    }

    rows = []
    latencies: dict[str, int] = {}
    for name, policy in schedulers.items():
        result = run_broadcast(topology, source, policy)
        metrics = BroadcastMetrics.from_result(topology, result)
        latencies[name] = result.latency
        rows.append(
            [
                name,
                result.latency,
                metrics.num_advances,
                metrics.total_transmissions,
                f"{metrics.mean_utilization:.2f}",
                f"{metrics.stretch:.2f}",
            ]
        )

    print(
        format_table(
            ["scheduler", "P(A) [rounds]", "advances", "transmissions", "recv/tx", "stretch"],
            rows,
        )
    )

    baseline = latencies["26-approx (baseline)"]
    best = min(v for k, v in latencies.items() if k != "26-approx (baseline)")
    print(
        f"\nPipeline scheduling improves the end-to-end delay by "
        f"{improvement_percent(baseline, best):.0f}% over the layer-synchronised "
        f"baseline on this deployment (hop floor = {eccentricity} rounds)."
    )


if __name__ == "__main__":
    main()
