#!/usr/bin/env python
"""Duty-cycle scenario: alarm dissemination in an energy-harvesting field.

The paper's motivation is mission-critical dissemination (e.g. an alarm) in
a WSN whose nodes sleep most of the time to save energy.  This example
models a monitoring field where every node is on a 2%-10% duty cycle and an
alarm raised at a random sensor must reach the whole network:

* a wake-up schedule with cycle rate ``r`` is generated per node;
* the alarm is broadcast with the duty-cycle-aware baseline (the
  17-approximation of Jiao et al.) and with the paper's pipeline schedulers;
* the latency is reported in slots and in milliseconds for a typical
  LPL slot length, together with the cycle-waiting overhead.

Run it with::

    python examples/duty_cycle_alarm.py [--nodes 120] [--rate 10] [--slot-ms 20]
"""

from __future__ import annotations

import argparse

from repro import (
    Approx17Policy,
    EModelPolicy,
    GreedyOptPolicy,
    WakeupSchedule,
    deploy_uniform,
    run_broadcast,
)
from repro.core.bounds import duty_cycle_17_bound, duty_cycle_opt_bound
from repro.core.time_counter import SearchConfig
from repro.dutycycle.cwt import max_cwt
from repro.sim.metrics import improvement_percent
from repro.utils.format import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=120)
    parser.add_argument("--rate", type=int, default=10, help="cycle rate r (slots per cycle)")
    parser.add_argument("--slot-ms", type=float, default=20.0, help="slot length in ms")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    topology, source = deploy_uniform(num_nodes=args.nodes, seed=args.seed)
    schedule = WakeupSchedule(topology.node_ids, rate=args.rate, seed=args.seed + 1)
    eccentricity = topology.eccentricity(source)
    duty_percent = 100.0 / args.rate

    print(
        f"Alarm field: {args.nodes} nodes, {duty_percent:.0f}% duty cycle "
        f"(r = {args.rate} slots), alarm source {eccentricity} hops from the edge.\n"
    )

    schedulers = {
        "17-approx (baseline)": Approx17Policy(),
        "G-OPT": GreedyOptPolicy(search=SearchConfig(mode="beam", beam_width=5)),
        "E-model": EModelPolicy(),
    }

    rows = []
    latencies: dict[str, int] = {}
    for name, policy in schedulers.items():
        result = run_broadcast(
            topology, source, policy, schedule=schedule, align_start=True
        )
        latencies[name] = result.latency
        rows.append(
            [
                name,
                result.latency,
                f"{result.latency * args.slot_ms:.0f}",
                result.num_advances,
                result.idle_time,
            ]
        )

    print(
        format_table(
            ["scheduler", "P(A) [slots]", "latency [ms]", "relay slots", "waiting slots"],
            rows,
        )
    )

    theorem1 = duty_cycle_opt_bound(args.rate, eccentricity)
    baseline_bound = duty_cycle_17_bound(eccentricity, max_cwt(args.rate))
    baseline = latencies["17-approx (baseline)"]
    best = min(latencies["G-OPT"], latencies["E-model"])
    print(
        f"\nAnalytical bounds: Theorem 1 gives {theorem1} slots for the pipeline "
        f"schedulers vs {baseline_bound} slots (17·k·d) for the baseline."
    )
    print(
        f"Measured improvement of the pipeline over the duty-cycle baseline: "
        f"{improvement_percent(baseline, best):.0f}% "
        f"({baseline * args.slot_ms:.0f} ms -> {best * args.slot_ms:.0f} ms)."
    )


if __name__ == "__main__":
    main()
